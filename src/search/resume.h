// Crash-safe batch resume: replay the event trace, skip what finished.
//
// `ifko tune-all --trace=FILE` streams one kernel_start event when a
// kernel's search begins and one kernel_end event (ok, best_params,
// best_cycles, default_cycles, evaluations, proposals) when it completes —
// each flushed as it happens.  That makes the trace a write-ahead log of
// batch progress: after a kill -9 mid-batch, pairing the surviving
// kernel_start/kernel_end events reconstructs exactly which kernels
// finished, with everything needed to re-emit their results (summary rows
// and wisdom records) without re-running them.
//
// The plan only trusts events whose kernel_start matches the resumed run's
// (machine, context, n, strategy) — a trace file shared across
// configurations never smuggles a stale result in.  A kernel whose
// kernel_end is missing (in flight when the run died) or not ok simply
// re-enters the search; with the evaluation cache warm its already-paid
// candidates replay as hits, so the re-run costs no duplicate real
// evaluations.  The trace is append-mode across runs, so a resumed run
// that is itself killed resumes again from the union of every run's
// completions.
#pragma once

#include <cstdint>
#include <map>
#include <string>

#include "search/linesearch.h"

namespace ifko::search {

/// One kernel a previous run finished successfully, as recorded by its
/// kernel_end trace event — everything tune-all needs to skip it.
struct CompletedKernel {
  std::string kernel;
  std::string bestParams;  ///< canonical TuningSpec of the winner
  uint64_t bestCycles = 0;
  uint64_t defaultCycles = 0;
  int evaluations = 0;  ///< real evaluations the original search spent
  int proposals = 0;
};

/// What a trace replay found.
struct ResumePlan {
  /// kernel name -> its completed result (last completion wins when the
  /// trace holds several runs).
  std::map<std::string, CompletedKernel> completed;
  int runs = 0;           ///< run_start events seen (any configuration)
  size_t damagedLines = 0;  ///< unparseable lines skipped (torn tail, etc.)
};

/// Replays `tracePath`, pairing kernel_start events that match (machine,
/// context, n, strategy) with their ok kernel_end events.  A missing file
/// yields an empty plan with *error set — resuming needs the previous
/// run's trace to exist.
[[nodiscard]] ResumePlan loadResumePlan(const std::string& tracePath,
                                        const std::string& machine,
                                        const std::string& context, int64_t n,
                                        const std::string& strategy,
                                        std::string* error = nullptr);

/// Rebuilds the TuneResult a completed kernel's search returned, from its
/// trace record — ok, winner (parsed back from the canonical spec), both
/// cycle counts, and the evaluation/proposal tallies.  The ledger and
/// analysis are not in the trace and stay empty; result.ok is false (with
/// result.error) when the recorded spec no longer parses.
[[nodiscard]] TuneResult resumedTuneResult(const CompletedKernel& done);

}  // namespace ifko::search
