#include "search/evalcache.h"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <map>

#include "support/json.h"

namespace ifko::search {

std::string EvalKey::str() const {
  // '|' never occurs in a hash, machine/context name, or TuningSpec string.
  return sourceHash + "|" + machine + "|" + context + "|" + std::to_string(n) +
         "|" + std::to_string(seed) + "|" + std::to_string(testerN) + "|" +
         params;
}

EvalCache::~EvalCache() {
  if (outFd_ >= 0) ::close(outFd_);
}

std::string EvalCache::formatLine(const EvalKey& key, const EvalRecord& rec) {
  JsonWriter w;
  w.field("source", key.sourceHash)
      .field("machine", key.machine)
      .field("context", key.context)
      .field("n", key.n)
      .field("seed", key.seed)
      .field("tester_n", key.testerN)
      .field("params", key.params)
      .field("cycles", rec.cycles)
      .field("status", std::string(evalStatusName(rec.status)));
  if (rec.counters.has_value()) w.field("counters", countersJson(*rec.counters));
  return w.str();
}

bool EvalCache::parseLine(const std::string& line, EvalKey* key,
                          EvalRecord* rec) {
  std::map<std::string, JsonValue> obj;
  if (!parseJsonObject(line, &obj)) return false;
  auto str = [&](const char* k) -> const std::string* {
    auto it = obj.find(k);
    if (it == obj.end() || it->second.kind != JsonValue::Kind::String)
      return nullptr;
    return &it->second.string;
  };
  auto num = [&](const char* k, double* out) {
    auto it = obj.find(k);
    if (it == obj.end() || it->second.kind != JsonValue::Kind::Number)
      return false;
    *out = it->second.number;
    return true;
  };
  const std::string* source = str("source");
  const std::string* machine = str("machine");
  const std::string* context = str("context");
  const std::string* params = str("params");
  double n = 0, seed = 0, testerN = 0, cycles = 0;
  if (source == nullptr || machine == nullptr || context == nullptr ||
      params == nullptr || !num("n", &n) || !num("seed", &seed) ||
      !num("tester_n", &testerN) || !num("cycles", &cycles))
    return false;
  // v2 lines carry the failure status; a v1 line's cycles==0 is some
  // failure whose flavour was never recorded.
  *rec = EvalRecord{static_cast<uint64_t>(cycles),
                    cycles != 0 ? EvalOutcome::Status::Timed
                                : EvalOutcome::Status::FailUnknown};
  if (const std::string* status = str("status")) {
    auto parsed = parseEvalStatus(*status);
    if (!parsed.has_value()) return false;
    rec->status = *parsed;
  }
  // v3 lines nest the observability counters; v2/v1 replay without.
  if (auto it = obj.find("counters");
      it != obj.end() && it->second.kind == JsonValue::Kind::Object &&
      it->second.object != nullptr)
    rec->counters = parseCounters(*it->second.object);
  *key = EvalKey{*source,
                 *machine,
                 *context,
                 static_cast<int64_t>(n),
                 static_cast<uint64_t>(seed),
                 static_cast<int64_t>(testerN),
                 *params};
  return true;
}

bool EvalCache::loadFileLocked(const std::string& path, std::string* error) {
  std::ifstream in(path);
  if (!in) return true;  // a cache that does not exist yet is just empty
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    EvalKey key;
    EvalRecord rec;
    if (!parseLine(line, &key, &rec)) {  // skip damaged lines, counted
      ++damagedLines_;
      continue;
    }
    map_[key.str()] = rec;
  }
  if (in.bad()) {
    if (error != nullptr) *error = "error reading cache file '" + path + "'";
    return false;
  }
  return true;
}

namespace {

/// O_APPEND so every write lands at the current end of file no matter how
/// many processes share it — the atomicity the single-write(2) append in
/// insert() relies on.
int openAppendFd(const std::string& path) {
  int fd;
  do {
    fd = ::open(path.c_str(), O_WRONLY | O_APPEND | O_CREAT | O_CLOEXEC, 0644);
  } while (fd < 0 && errno == EINTR);
  return fd;
}

}  // namespace

bool EvalCache::open(const std::string& path, std::string* error) {
  auto fail = [&](const std::string& msg) {
    if (error != nullptr) *error = msg;
    return false;
  };
  {
    std::lock_guard<std::mutex> lock(mu_);
    damagedLines_ = 0;
    std::string loadError;
    if (!loadFileLocked(path, &loadError)) return fail(loadError);
  }
  const int fd = openAppendFd(path);
  if (fd < 0)
    return fail("cannot open cache file '" + path + "' for appending");
  std::lock_guard<std::mutex> lock(mu_);
  if (outFd_ >= 0) ::close(outFd_);
  outFd_ = fd;
  return true;
}

std::string EvalCache::shardFileName(const std::string& dir,
                                     const std::string& shard) {
  return dir + "/cache." + shard + ".jsonl";
}

std::vector<std::string> EvalCache::shardFiles(const std::string& dir,
                                               std::string* error) {
  namespace fs = std::filesystem;
  std::vector<std::string> files;
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(dir, ec)) {
    if (!entry.is_regular_file()) continue;
    const std::string name = entry.path().filename().string();
    if (name.size() > 12 && name.rfind("cache.", 0) == 0 &&
        name.compare(name.size() - 6, 6, ".jsonl") == 0)
      files.push_back(entry.path().string());
  }
  if (ec) {
    if (error != nullptr)
      *error = "cannot list shard directory '" + dir + "': " + ec.message();
    return {};
  }
  std::sort(files.begin(), files.end());
  return files;
}

bool EvalCache::openDir(const std::string& dir, const std::string& shard,
                        std::string* error) {
  auto fail = [&](const std::string& msg) {
    if (error != nullptr) *error = msg;
    return false;
  };
  namespace fs = std::filesystem;
  std::error_code ec;
  fs::create_directories(dir, ec);
  if (ec)
    return fail("cannot create shard directory '" + dir +
                "': " + ec.message());
  std::string listError;
  std::vector<std::string> files = shardFiles(dir, &listError);
  if (!listError.empty()) return fail(listError);
  {
    std::lock_guard<std::mutex> lock(mu_);
    damagedLines_ = 0;
    for (const std::string& file : files) {
      std::string loadError;
      if (!loadFileLocked(file, &loadError)) return fail(loadError);
    }
  }
  const std::string own = shardFileName(dir, shard);
  const int fd = openAppendFd(own);
  if (fd < 0)
    return fail("cannot open shard file '" + own + "' for appending");
  std::lock_guard<std::mutex> lock(mu_);
  if (outFd_ >= 0) ::close(outFd_);
  outFd_ = fd;
  return true;
}

bool EvalCache::mergeFiles(const std::vector<std::string>& inputs,
                           const std::string& outPath, std::string* error,
                           CacheMergeStats* stats) {
  auto fail = [&](const std::string& msg) {
    if (error != nullptr) *error = msg;
    return false;
  };
  CacheMergeStats st;
  // Ordered by key so the merged file is deterministic: any input order
  // produces the same bytes.  First occurrence wins, which is harmless —
  // records are pure functions of their keys, so duplicates are identical.
  std::map<std::string, std::string> lines;
  for (const std::string& input : inputs) {
    std::ifstream in(input);
    if (!in) return fail("cannot read cache file '" + input + "'");
    ++st.files;
    std::string line;
    while (std::getline(in, line)) {
      if (line.empty()) continue;
      EvalKey key;
      EvalRecord rec;
      if (!parseLine(line, &key, &rec)) {
        ++st.damaged;
        continue;
      }
      ++st.lines;
      if (!lines.emplace(key.str(), formatLine(key, rec)).second)
        ++st.duplicates;
    }
    if (in.bad()) return fail("error reading cache file '" + input + "'");
  }
  st.unique = lines.size();

  // Atomic: a unique temp name keeps concurrent mergers from clobbering
  // each other's half-written file (same discipline as WisdomStore::save).
  const std::string tmp =
      outPath + ".tmp." + std::to_string(static_cast<long>(::getpid()));
  {
    std::ofstream out(tmp, std::ios::trunc);
    if (!out) return fail("cannot write '" + tmp + "'");
    for (const auto& [key, line] : lines) out << line << "\n";
    out.flush();
    if (!out) return fail("error writing '" + tmp + "'");
  }
  if (std::rename(tmp.c_str(), outPath.c_str()) != 0) {
    std::remove(tmp.c_str());
    return fail("cannot rename '" + tmp + "' over '" + outPath + "'");
  }
  if (stats != nullptr) *stats = st;
  return true;
}

std::optional<EvalRecord> EvalCache::lookup(const EvalKey& key) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = map_.find(key.str());
  if (it == map_.end()) {
    ++misses_;
    return std::nullopt;
  }
  ++hits_;
  return it->second;
}

void EvalCache::insert(const EvalKey& key, uint64_t cycles,
                       EvalOutcome::Status status,
                       const std::optional<EvalCounters>& counters) {
  std::lock_guard<std::mutex> lock(mu_);
  auto [it, inserted] =
      map_.emplace(key.str(), EvalRecord{cycles, status, counters});
  if (!inserted) return;
  if (outFd_ < 0) return;
  // One whole line per write(2) on an O_APPEND descriptor: the kernel
  // serializes concurrent appends, so writers in other processes can never
  // interleave mid-line.  A short write (signal/ENOSPC) is finished with
  // the remainder — same torn-tail exposure a crash always had, and load()
  // skips a torn line.
  const std::string line = formatLine(key, it->second) + "\n";
  size_t off = 0;
  while (off < line.size()) {
    const ssize_t n = ::write(outFd_, line.data() + off, line.size() - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      break;  // disk error: the memo stays correct, persistence degrades
    }
    off += static_cast<size_t>(n);
  }
}

size_t EvalCache::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return map_.size();
}

uint64_t EvalCache::hits() const {
  std::lock_guard<std::mutex> lock(mu_);
  return hits_;
}

uint64_t EvalCache::misses() const {
  std::lock_guard<std::mutex> lock(mu_);
  return misses_;
}

double EvalCache::hitRate() const {
  std::lock_guard<std::mutex> lock(mu_);
  uint64_t total = hits_ + misses_;
  return total == 0 ? 0.0
                    : static_cast<double>(hits_) / static_cast<double>(total);
}

void EvalCache::resetStats() {
  std::lock_guard<std::mutex> lock(mu_);
  hits_ = 0;
  misses_ = 0;
}

size_t EvalCache::damagedLines() const {
  std::lock_guard<std::mutex> lock(mu_);
  return damagedLines_;
}

}  // namespace ifko::search
