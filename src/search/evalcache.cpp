#include "search/evalcache.h"

#include <fstream>

#include "support/json.h"

namespace ifko::search {

std::string EvalKey::str() const {
  // '|' never occurs in a hash, machine/context name, or TuningSpec string.
  return sourceHash + "|" + machine + "|" + context + "|" + std::to_string(n) +
         "|" + std::to_string(seed) + "|" + std::to_string(testerN) + "|" +
         params;
}

EvalCache::~EvalCache() {
  if (out_ != nullptr) std::fclose(out_);
}

bool EvalCache::open(const std::string& path, std::string* error) {
  auto fail = [&](const std::string& msg) {
    if (error != nullptr) *error = msg;
    return false;
  };
  {
    std::ifstream in(path);
    if (in) {
      std::lock_guard<std::mutex> lock(mu_);
      damagedLines_ = 0;
      std::string line;
      while (std::getline(in, line)) {
        if (line.empty()) continue;
        std::map<std::string, JsonValue> obj;
        if (!parseJsonObject(line, &obj)) {  // skip damaged lines, counted
          ++damagedLines_;
          continue;
        }
        auto str = [&](const char* k) -> const std::string* {
          auto it = obj.find(k);
          if (it == obj.end() || it->second.kind != JsonValue::Kind::String)
            return nullptr;
          return &it->second.string;
        };
        auto num = [&](const char* k, double* out) {
          auto it = obj.find(k);
          if (it == obj.end() || it->second.kind != JsonValue::Kind::Number)
            return false;
          *out = it->second.number;
          return true;
        };
        const std::string* source = str("source");
        const std::string* machine = str("machine");
        const std::string* context = str("context");
        const std::string* params = str("params");
        double n = 0, seed = 0, testerN = 0, cycles = 0;
        if (source == nullptr || machine == nullptr || context == nullptr ||
            params == nullptr || !num("n", &n) || !num("seed", &seed) ||
            !num("tester_n", &testerN) || !num("cycles", &cycles)) {
          ++damagedLines_;
          continue;
        }
        // v2 lines carry the failure status; a v1 line's cycles==0 is some
        // failure whose flavour was never recorded.
        EvalRecord rec{static_cast<uint64_t>(cycles),
                       cycles != 0 ? EvalOutcome::Status::Timed
                                   : EvalOutcome::Status::FailUnknown};
        if (const std::string* status = str("status")) {
          auto parsed = parseEvalStatus(*status);
          if (!parsed.has_value()) {
            ++damagedLines_;
            continue;
          }
          rec.status = *parsed;
        }
        // v3 lines nest the observability counters; v2/v1 replay without.
        if (auto it = obj.find("counters");
            it != obj.end() && it->second.kind == JsonValue::Kind::Object &&
            it->second.object != nullptr)
          rec.counters = parseCounters(*it->second.object);
        EvalKey key{*source,
                    *machine,
                    *context,
                    static_cast<int64_t>(n),
                    static_cast<uint64_t>(seed),
                    static_cast<int64_t>(testerN),
                    *params};
        map_[key.str()] = rec;
      }
      if (in.bad()) return fail("error reading cache file '" + path + "'");
    }
  }
  std::FILE* f = std::fopen(path.c_str(), "a");
  if (f == nullptr)
    return fail("cannot open cache file '" + path + "' for appending");
  std::lock_guard<std::mutex> lock(mu_);
  if (out_ != nullptr) std::fclose(out_);
  out_ = f;
  return true;
}

std::optional<EvalRecord> EvalCache::lookup(const EvalKey& key) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = map_.find(key.str());
  if (it == map_.end()) {
    ++misses_;
    return std::nullopt;
  }
  ++hits_;
  return it->second;
}

void EvalCache::insert(const EvalKey& key, uint64_t cycles,
                       EvalOutcome::Status status,
                       const std::optional<EvalCounters>& counters) {
  std::lock_guard<std::mutex> lock(mu_);
  auto [it, inserted] =
      map_.emplace(key.str(), EvalRecord{cycles, status, counters});
  if (!inserted) return;
  if (out_ == nullptr) return;
  JsonWriter w;
  w.field("source", key.sourceHash)
      .field("machine", key.machine)
      .field("context", key.context)
      .field("n", key.n)
      .field("seed", key.seed)
      .field("tester_n", key.testerN)
      .field("params", key.params)
      .field("cycles", cycles)
      .field("status", std::string(evalStatusName(status)));
  if (counters.has_value()) w.field("counters", countersJson(*counters));
  // One whole line per fputs + flush: an interrupted run can only ever
  // truncate the final line, which load() skips.
  std::fputs((w.str() + "\n").c_str(), out_);
  std::fflush(out_);
}

size_t EvalCache::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return map_.size();
}

uint64_t EvalCache::hits() const {
  std::lock_guard<std::mutex> lock(mu_);
  return hits_;
}

uint64_t EvalCache::misses() const {
  std::lock_guard<std::mutex> lock(mu_);
  return misses_;
}

double EvalCache::hitRate() const {
  std::lock_guard<std::mutex> lock(mu_);
  uint64_t total = hits_ + misses_;
  return total == 0 ? 0.0
                    : static_cast<double>(hits_) / static_cast<double>(total);
}

void EvalCache::resetStats() {
  std::lock_guard<std::mutex> lock(mu_);
  hits_ = 0;
  misses_ = 0;
}

size_t EvalCache::damagedLines() const {
  std::lock_guard<std::mutex> lock(mu_);
  return damagedLines_;
}

}  // namespace ifko::search
