#include "search/linesearch.h"

#include <algorithm>
#include <map>

#include "fko/harness.h"
#include "kernels/tester.h"
#include "opt/paramspace.h"
#include "search/faultguard.h"

namespace ifko::search {

using opt::PrefParam;
using opt::TuningParams;

// The per-dimension grids (unrollGrid, accumGrid, prefDistMultGrid) moved
// to opt/paramspace.h so every search strategy enumerates the same legal
// space the line search sweeps.

std::string_view evalStatusName(EvalOutcome::Status s) {
  switch (s) {
    case EvalOutcome::Status::Timed: return "timed";
    case EvalOutcome::Status::CompileFail: return "compile_fail";
    case EvalOutcome::Status::TesterFail: return "tester_fail";
    case EvalOutcome::Status::Timeout: return "timeout";
    case EvalOutcome::Status::Crash: return "crash";
    case EvalOutcome::Status::FailUnknown: return "fail";
  }
  return "?";
}

std::optional<EvalOutcome::Status> parseEvalStatus(std::string_view name) {
  using S = EvalOutcome::Status;
  for (S s : {S::Timed, S::CompileFail, S::TesterFail, S::Timeout, S::Crash,
              S::FailUnknown})
    if (evalStatusName(s) == name) return s;
  return std::nullopt;
}

void Evaluator::onDimensionEnd(const std::string&, uint64_t,
                               const opt::TuningParams&) {}

opt::TuningParams fkoDefaults(const fko::AnalysisReport& report,
                              const arch::MachineConfig& machine) {
  TuningParams p;
  p.simdVectorize = true;  // SV = Yes
  p.nonTemporalWrites = false;
  const int line = machine.lineBytes();
  // L_e: elements per line, counted in SIMD vectors when vectorized.
  int elemBytes = report.vectorizable && p.simdVectorize
                      ? ir::kVecBytes
                      : scalBytes(report.elemType);
  p.unroll = std::max(1, line / elemBytes);
  p.accumExpand = 1;  // AE = No
  for (const auto& a : report.arrays) {
    if (!a.prefetchable) continue;
    p.prefetch[a.name] = {true, ir::PrefKind::NTA, 2 * line};
  }
  return p;
}

uint64_t timeParams(const kernels::KernelSpec& spec,
                    const arch::MachineConfig& machine,
                    const opt::TuningParams& params,
                    const SearchConfig& config) {
  fko::CompileOptions opts;
  opts.tuning = params;
  auto compiled = fko::compileKernel(spec.hilSource(), opts, machine);
  if (!compiled.ok) return 0;
  auto t = sim::timeKernel(machine, compiled.fn, spec, config.n,
                           config.context, config.seed);
  return t.cycles;
}

std::vector<std::string> paramsRow(const opt::TuningParams& params,
                                   const fko::AnalysisReport& analysis) {
  std::vector<std::string> row;
  bool sv = params.simdVectorize && analysis.vectorizable;
  row.push_back(std::string(sv ? "Y" : "N") + ":" +
                (params.nonTemporalWrites ? "Y" : "N"));
  auto prefCell = [&](const std::string& name) -> std::string {
    bool exists = false;
    for (const auto& a : analysis.arrays)
      if (a.name == name) exists = true;
    if (!exists) return "n/a:0";
    auto it = params.prefetch.find(name);
    if (it == params.prefetch.end() || !it->second.enabled) return "none:0";
    return opt::formatPref(it->second);
  };
  row.push_back(prefCell("X"));
  row.push_back(prefCell("Y"));
  row.push_back(std::to_string(params.unroll) + ":" +
                std::to_string(params.accumExpand > 1 ? params.accumExpand : 0));
  return row;
}

EvalOutcome evaluateCandidate(const std::string& hilSource,
                              const fko::LoweredKernel& lowered,
                              const kernels::KernelSpec* spec,
                              const fko::AnalysisReport& analysis,
                              const arch::MachineConfig& machine,
                              const SearchConfig& config,
                              const opt::TuningParams& params) {
  if (!lowered.ok) return {0, EvalOutcome::Status::CompileFail};
  fko::CompileOptions opts;
  opts.tuning = params;
  auto compiled = fko::compileKernel(lowered.fn, opts, machine);
  if (!compiled.ok) return {0, EvalOutcome::Status::CompileFail};
  if (config.testerN > 0) {
    bool pass =
        spec != nullptr
            ? kernels::testKernel(*spec, compiled.fn, config.testerN).ok
            : fko::testAgainstUnoptimized(hilSource, compiled.fn,
                                          config.testerN)
                  .ok;
    if (!pass) return {0, EvalOutcome::Status::TesterFail};
  }
  sim::TimeResult timed;
  if (spec != nullptr) {
    timed = sim::timeKernel(machine, compiled.fn, *spec, config.n,
                            config.context, config.seed);
  } else {
    int64_t strideElems = 1;
    for (const auto& a : analysis.arrays)
      strideElems = std::max(strideElems, a.strideElems);
    timed = fko::timeCompiled(machine, compiled.fn, config.n, config.context,
                              config.seed, strideElems);
  }
  EvalOutcome out{timed.cycles, EvalOutcome::Status::Timed};
  out.counters = collectCounters(compiled, timed);
  return out;
}

namespace {

/// The built-in backend: evaluates in order on the calling thread, memoized
/// on the canonical TuningSpec string for the lifetime of one search.
class SerialEvaluator final : public Evaluator {
 public:
  SerialEvaluator(std::string source, const kernels::KernelSpec* spec,
                  const arch::MachineConfig& machine,
                  const SearchConfig& config)
      : source_(std::move(source)), spec_(spec), machine_(machine),
        config_(config), analysis_(fko::analyzeKernel(source_, machine)),
        lowered_(fko::lowerKernel(source_)) {}

  std::vector<EvalOutcome> evaluateBatch(
      const std::vector<opt::TuningParams>& batch,
      const std::string& /*dimension*/) override {
    std::vector<EvalOutcome> out;
    out.reserve(batch.size());
    for (const TuningParams& params : batch) {
      std::string key = opt::formatTuningSpec(params);
      auto it = memo_.find(key);
      if (it != memo_.end()) {
        EvalOutcome o = it->second;
        o.fromCache = true;
        out.push_back(o);
        continue;
      }
      ++evaluations_;
      EvalOutcome o = guardedEvaluateCandidate(source_, lowered_, spec_,
                                               analysis_, machine_, config_,
                                               params);
      memo_[key] = o;
      out.push_back(o);
    }
    return out;
  }

  int evaluations() const override { return evaluations_; }

 private:
  std::string source_;
  const kernels::KernelSpec* spec_;
  const arch::MachineConfig& machine_;
  const SearchConfig& config_;
  fko::AnalysisReport analysis_;
  fko::LoweredKernel lowered_;
  std::map<std::string, EvalOutcome> memo_;
  int evaluations_ = 0;
};

class LineSearchCore {
 public:
  LineSearchCore(const std::string& source, const arch::MachineConfig& machine,
                 const SearchConfig& config, Evaluator& eval)
      : source_(source), machine_(machine), config_(config), eval_(eval) {}

  TuneResult run() {
    TuneResult result;
    result.analysis = fko::analyzeKernel(source_, machine_);
    if (!result.analysis.ok) {
      result.error = result.analysis.error;
      return result;
    }
    const fko::AnalysisReport& rep = result.analysis;

    cur_ = fkoDefaults(rep, machine_);
    result.defaults = cur_;
    curCycles_ = eval_.evaluateBatch({cur_}, "DEFAULTS")[0].cycles;
    if (curCycles_ == 0) {
      result.error = "default parameters failed to compile/time";
      result.evaluations = eval_.evaluations();
      return result;
    }
    result.defaultCycles = curCycles_;

    const int line = machine_.lineBytes();

    // --- WNT ------------------------------------------------------------------
    {
      std::vector<TuningParams> cands;
      bool hasStores = false;
      for (const auto& a : rep.arrays) hasStores |= a.stored;
      if (hasStores) {
        TuningParams t = cur_;
        t.nonTemporalWrites = !t.nonTemporalWrites;
        cands.push_back(t);
      }
      sweep("WNT", cands);
    }

    // --- PF distance: a 1-D sweep per array, committed sequentially, with
    // a second round since the arrays' distances interact through the bus
    // (the paper's relaxation of strict 1-D searches).  Within one array's
    // grid the candidates are mutually independent, so they form one batch.
    {
      int prefetchableArrays = 0;
      for (const auto& a : rep.arrays)
        if (a.prefetchable) ++prefetchableArrays;
      int rounds = prefetchableArrays > 1 ? 2 : 1;
      for (int round = 0; round < rounds; ++round) {
        for (const auto& a : rep.arrays) {
          if (!a.prefetchable) continue;
          std::vector<TuningParams> cands;
          for (int mult : opt::prefDistMultGrid(config_.reducedGrids())) {
            TuningParams t = cur_;
            PrefParam& pp = t.prefetch[a.name];
            if (mult == 0) {
              pp.enabled = false;
              pp.distBytes = 0;
            } else {
              pp.enabled = true;
              pp.distBytes = mult * line;
            }
            cands.push_back(t);
          }
          commit(cands, eval_.evaluateBatch(cands, "PF DST"));
        }
      }
      endDimension("PF DST");
    }

    // --- PF instruction kind (sequential per-array commits) ------------------
    {
      for (const auto& a : rep.arrays) {
        if (!a.prefetchable) continue;
        auto it = cur_.prefetch.find(a.name);
        if (it == cur_.prefetch.end() || !it->second.enabled) continue;
        ir::PrefKind curKind = it->second.kind;
        std::vector<TuningParams> cands;
        for (ir::PrefKind kind : rep.prefKinds) {
          if (kind == curKind) continue;
          TuningParams t = cur_;
          t.prefetch[a.name].kind = kind;
          cands.push_back(t);
        }
        commit(cands, eval_.evaluateBatch(cands, "PF INS"));
      }
      endDimension("PF INS");
    }

    // --- UR ---------------------------------------------------------------------
    {
      std::vector<TuningParams> cands;
      for (int u : opt::unrollGrid(config_.reducedGrids(), rep.maxUnroll)) {
        if (u == cur_.unroll) continue;
        TuningParams t = cur_;
        t.unroll = u;
        t.accumExpand = std::min(t.accumExpand, u);
        cands.push_back(t);
      }
      sweep("UR", cands);
    }

    // --- AE ---------------------------------------------------------------------
    {
      std::vector<TuningParams> cands;
      if (rep.numAccumulators > 0) {
        for (int m : opt::accumGrid(config_.reducedGrids())) {
          if (m == cur_.accumExpand || m > cur_.unroll) continue;
          TuningParams t = cur_;
          t.accumExpand = m;
          cands.push_back(t);
        }
      }
      sweep("AE", cands);
    }

    // --- restricted 2-D (UR, AE): strongly interacting pair --------------------
    if (rep.numAccumulators > 0 && !config_.reducedGrids()) {
      std::vector<TuningParams> cands;
      std::vector<int> urs = opt::unrollGrid(false, rep.maxUnroll);
      auto near = [&](int v, const std::vector<int>& grid) {
        std::vector<int> out;
        auto it = std::find(grid.begin(), grid.end(), v);
        if (it == grid.end()) return out;
        if (it != grid.begin()) out.push_back(*(it - 1));
        if (it + 1 != grid.end()) out.push_back(*(it + 1));
        return out;
      };
      std::vector<int> urCands = near(cur_.unroll, urs);
      urCands.push_back(cur_.unroll);
      std::vector<int> aeCands = near(cur_.accumExpand, opt::accumGrid(false));
      aeCands.push_back(cur_.accumExpand);
      for (int u : urCands)
        for (int m : aeCands) {
          if (m > u) continue;
          if (u == cur_.unroll && m == cur_.accumExpand) continue;
          TuningParams t = cur_;
          t.unroll = u;
          t.accumExpand = m;
          cands.push_back(t);
        }
      sweep("UR*AE", cands);
    }

    // --- extensions (opt-in): block fetch and CISC indexing ----------------
    if (config_.searchExtensions) {
      {
        std::vector<TuningParams> cands;
        TuningParams t = cur_;
        t.blockFetch = !t.blockFetch;
        cands.push_back(t);
        // Block fetch wants whole blocks per iteration: retry deeper unrolls.
        for (int u : {8, 16, 32}) {
          if (u > rep.maxUnroll) continue;
          TuningParams t2 = cur_;
          t2.blockFetch = true;
          t2.unroll = u;
          cands.push_back(t2);
        }
        sweep("BF", cands);
      }
      {
        std::vector<TuningParams> cands;
        TuningParams t = cur_;
        t.ciscIndexing = !t.ciscIndexing;
        cands.push_back(t);
        sweep("CISC", cands);
      }
    }

    result.best = cur_;
    result.bestCycles = curCycles_;
    result.ledger = ledger_;
    result.evaluations = eval_.evaluations();
    result.ok = true;
    return result;
  }

 private:
  /// Scan the batch results in candidate order, committing every strict
  /// improvement — identical to the serial sweep's running minimum.
  void commit(const std::vector<TuningParams>& cands,
              const std::vector<EvalOutcome>& outcomes) {
    for (size_t i = 0; i < cands.size(); ++i) {
      if (outcomes[i].cycles != 0 && outcomes[i].cycles < curCycles_) {
        curCycles_ = outcomes[i].cycles;
        cur_ = cands[i];
      }
    }
  }

  void endDimension(const std::string& dim) {
    ledger_.push_back({dim, curCycles_});
    eval_.onDimensionEnd(dim, curCycles_, cur_);
  }

  void sweep(const std::string& dim, const std::vector<TuningParams>& cands) {
    if (!cands.empty()) commit(cands, eval_.evaluateBatch(cands, dim));
    endDimension(dim);
  }

  const std::string& source_;
  const arch::MachineConfig& machine_;
  const SearchConfig& config_;
  Evaluator& eval_;
  TuningParams cur_;
  uint64_t curCycles_ = 0;
  std::vector<DimensionResult> ledger_;
};

}  // namespace

std::unique_ptr<Evaluator> makeSerialEvaluator(
    std::string source, const kernels::KernelSpec* spec,
    const arch::MachineConfig& machine, const SearchConfig& config) {
  return std::make_unique<SerialEvaluator>(std::move(source), spec, machine,
                                           config);
}

TuneResult runLineSearch(const std::string& hilSource,
                         const arch::MachineConfig& machine,
                         const SearchConfig& config, Evaluator& evaluator) {
  return LineSearchCore(hilSource, machine, config, evaluator).run();
}

TuneResult tuneKernel(const kernels::KernelSpec& spec,
                      const arch::MachineConfig& machine,
                      const SearchConfig& config) {
  std::string source = spec.hilSource();
  SerialEvaluator eval(source, &spec, machine, config);
  return runLineSearch(source, machine, config, eval);
}

TuneResult tuneSource(const std::string& hilSource,
                      const arch::MachineConfig& machine,
                      const SearchConfig& config) {
  SerialEvaluator eval(hilSource, nullptr, machine, config);
  return runLineSearch(hilSource, machine, config, eval);
}

}  // namespace ifko::search
