#include "search/linesearch.h"

#include <algorithm>
#include <map>

#include "fko/harness.h"
#include "kernels/tester.h"
#include "opt/paramspace.h"
#include "search/evalpipeline.h"
#include "search/faultguard.h"

namespace ifko::search {

using opt::PrefParam;
using opt::TuningParams;

// The per-dimension grids (unrollGrid, accumGrid, prefDistMultGrid) moved
// to opt/paramspace.h so every search strategy enumerates the same legal
// space the line search sweeps.

std::string_view evalStatusName(EvalOutcome::Status s) {
  switch (s) {
    case EvalOutcome::Status::Timed: return "timed";
    case EvalOutcome::Status::CompileFail: return "compile_fail";
    case EvalOutcome::Status::TesterFail: return "tester_fail";
    case EvalOutcome::Status::Timeout: return "timeout";
    case EvalOutcome::Status::Crash: return "crash";
    case EvalOutcome::Status::FailUnknown: return "fail";
    case EvalOutcome::Status::ScreenedOut: return "screened";
  }
  return "?";
}

std::optional<EvalOutcome::Status> parseEvalStatus(std::string_view name) {
  using S = EvalOutcome::Status;
  for (S s : {S::Timed, S::CompileFail, S::TesterFail, S::Timeout, S::Crash,
              S::FailUnknown, S::ScreenedOut})
    if (evalStatusName(s) == name) return s;
  return std::nullopt;
}

void Evaluator::onDimensionEnd(const std::string&, uint64_t,
                               const opt::TuningParams&) {}

opt::TuningParams fkoDefaults(const fko::AnalysisReport& report,
                              const arch::MachineConfig& machine) {
  TuningParams p;
  p.simdVectorize = true;  // SV = Yes
  p.nonTemporalWrites = false;
  const int line = machine.lineBytes();
  // L_e: elements per line, counted in SIMD vectors when vectorized.
  int elemBytes = report.vectorizable && p.simdVectorize
                      ? ir::kVecBytes
                      : scalBytes(report.elemType);
  p.unroll = std::max(1, line / elemBytes);
  p.accumExpand = 1;  // AE = No
  for (const auto& a : report.arrays) {
    if (!a.prefetchable) continue;
    p.prefetch[a.name] = {true, ir::PrefKind::NTA, 2 * line};
  }
  return p;
}

uint64_t timeParams(const kernels::KernelSpec& spec,
                    const arch::MachineConfig& machine,
                    const opt::TuningParams& params,
                    const SearchConfig& config) {
  fko::CompileOptions opts;
  opts.tuning = params;
  auto compiled = fko::compileKernel(spec.hilSource(), opts, machine);
  if (!compiled.ok) return 0;
  auto t = sim::timeKernel(machine, compiled.fn, spec, config.n,
                           config.context, config.seed);
  return t.cycles;
}

std::vector<std::string> paramsRow(const opt::TuningParams& params,
                                   const fko::AnalysisReport& analysis) {
  std::vector<std::string> row;
  bool sv = params.simdVectorize && analysis.vectorizable;
  row.push_back(std::string(sv ? "Y" : "N") + ":" +
                (params.nonTemporalWrites ? "Y" : "N"));
  auto prefCell = [&](const std::string& name) -> std::string {
    bool exists = false;
    for (const auto& a : analysis.arrays)
      if (a.name == name) exists = true;
    if (!exists) return "n/a:0";
    auto it = params.prefetch.find(name);
    if (it == params.prefetch.end() || !it->second.enabled) return "none:0";
    return opt::formatPref(it->second);
  };
  row.push_back(prefCell("X"));
  row.push_back(prefCell("Y"));
  row.push_back(std::to_string(params.unroll) + ":" +
                std::to_string(params.accumExpand > 1 ? params.accumExpand : 0));
  return row;
}

EvalOutcome evaluateCandidate(const std::string& hilSource,
                              const fko::LoweredKernel& lowered,
                              const kernels::KernelSpec* spec,
                              const fko::AnalysisReport& analysis,
                              const arch::MachineConfig& machine,
                              const SearchConfig& config,
                              const opt::TuningParams& params) {
  EvalRequest req;
  req.hilSource = &hilSource;
  req.lowered = &lowered;
  req.spec = spec;
  req.analysis = &analysis;
  req.machine = &machine;
  req.config = &config;
  req.params = params;
  return evaluateCandidate(req);
}

namespace {

/// The built-in backend: evaluates in order on the calling thread through a
/// per-search EvalPipeline (compile/decode/tester memos), with whole
/// outcomes additionally memoized on the canonical TuningSpec string for
/// the lifetime of one search.  Screen-then-confirm (SearchConfig::screenN)
/// applies per batch of memo misses.
class SerialEvaluator final : public Evaluator {
 public:
  SerialEvaluator(std::string source, const kernels::KernelSpec* spec,
                  const arch::MachineConfig& machine,
                  const SearchConfig& config)
      : config_(config), pipeline_(std::move(source), spec, machine, config) {}

  std::vector<EvalOutcome> evaluateBatch(
      const std::vector<opt::TuningParams>& batch,
      const std::string& /*dimension*/) override {
    std::vector<EvalOutcome> out(batch.size());
    // Memo pre-pass: replays are free and leave the cohort of fresh
    // candidates the screening policy applies to.  A spec repeated within
    // one batch is evaluated once and replayed for the duplicates, exactly
    // like the serial scan's insert-then-hit did.
    std::vector<size_t> miss;
    std::map<std::string, size_t> firstMiss;
    std::vector<std::pair<size_t, size_t>> dups;  // (duplicate, original)
    for (size_t i = 0; i < batch.size(); ++i) {
      std::string key = opt::formatTuningSpec(batch[i]);
      auto it = memo_.find(key);
      if (it != memo_.end()) {
        out[i] = it->second;
        out[i].fromCache = true;
        continue;
      }
      auto [fit, fresh] = firstMiss.emplace(key, i);
      if (fresh)
        miss.push_back(i);
      else
        dups.emplace_back(i, fit->second);
    }

    auto evalAt = [&](size_t i, int64_t timeN) {
      EvalRequest req = pipeline_.request(batch[i]);
      req.timeN = timeN;
      return guardedEvaluateCandidate(req);
    };

    if (screeningApplies(config_, miss.size())) {
      std::vector<EvalOutcome> screens(miss.size());
      for (size_t k = 0; k < miss.size(); ++k) {
        EvalOutcome head = evalAt(miss[k], config_.screenN);
        if (!head.usable()) {
          screens[k] = head;
          continue;
        }
        EvalOutcome tail = evalAt(miss[k], 2 * config_.screenN);
        if (!tail.usable()) {
          screens[k] = tail;
          continue;
        }
        screens[k] = deltaScreen(head, tail);
      }
      std::vector<char> advance =
          screenSurvivors(config_, screens, incumbentScreen_);
      for (size_t k = 0; k < miss.size(); ++k) {
        if (advance[k]) {
          out[miss[k]] = evalAt(miss[k], 0);
          noteConfirmed(out[miss[k]], screens[k].cycles);
        } else if (screens[k].usable()) {
          EvalOutcome o{0, EvalOutcome::Status::ScreenedOut};
          o.attempts = screens[k].attempts;
          out[miss[k]] = o;
        } else {
          out[miss[k]] = screens[k];  // the screen's failure is final
        }
      }
    } else {
      for (size_t i : miss) {
        out[i] = evalAt(i, 0);
        noteConfirmed(out[i], 0);
      }
    }

    for (size_t i : miss) {
      ++evaluations_;
      memo_[opt::formatTuningSpec(batch[i])] = out[i];
    }
    for (auto [i, j] : dups) {
      out[i] = out[j];
      out[i].fromCache = true;
    }
    return out;
  }

  int evaluations() const override { return evaluations_; }

 private:
  /// Track the search incumbent so screenSurvivors can skip full-size
  /// confirmation of candidates that cannot beat it.  `screenCycles` is the
  /// candidate's own screen-size time (0 when it ran unscreened — then only
  /// the full-size best advances, the screen yardstick stays put).
  void noteConfirmed(const EvalOutcome& full, uint64_t screenCycles) {
    if (!full.usable()) return;
    if (bestFull_ != 0 && full.cycles >= bestFull_) return;
    bestFull_ = full.cycles;
    if (screenCycles != 0) incumbentScreen_ = screenCycles;
  }

  const SearchConfig& config_;
  EvalPipeline pipeline_;
  std::map<std::string, EvalOutcome> memo_;
  int evaluations_ = 0;
  uint64_t bestFull_ = 0;        ///< best full-size cycles confirmed so far
  uint64_t incumbentScreen_ = 0; ///< that incumbent's screen-size cycles
};

class LineSearchCore {
 public:
  LineSearchCore(const std::string& source, const arch::MachineConfig& machine,
                 const SearchConfig& config, Evaluator& eval)
      : source_(source), machine_(machine), config_(config), eval_(eval) {}

  TuneResult run() {
    TuneResult result;
    result.analysis = fko::analyzeKernel(source_, machine_);
    if (!result.analysis.ok) {
      result.error = result.analysis.error;
      return result;
    }
    const fko::AnalysisReport& rep = result.analysis;

    cur_ = fkoDefaults(rep, machine_);
    result.defaults = cur_;
    curCycles_ = eval_.evaluateBatch({cur_}, "DEFAULTS")[0].cycles;
    if (curCycles_ == 0) {
      result.error = "default parameters failed to compile/time";
      result.evaluations = eval_.evaluations();
      return result;
    }
    result.defaultCycles = curCycles_;

    const int line = machine_.lineBytes();

    // --- WNT ------------------------------------------------------------------
    {
      std::vector<TuningParams> cands;
      bool hasStores = false;
      for (const auto& a : rep.arrays) hasStores |= a.stored;
      if (hasStores) {
        TuningParams t = cur_;
        t.nonTemporalWrites = !t.nonTemporalWrites;
        cands.push_back(t);
      }
      sweep("WNT", cands);
    }

    // --- PF distance: a 1-D sweep per array, committed sequentially, with
    // a second round since the arrays' distances interact through the bus
    // (the paper's relaxation of strict 1-D searches).  Within one array's
    // grid the candidates are mutually independent, so they form one batch.
    {
      int prefetchableArrays = 0;
      for (const auto& a : rep.arrays)
        if (a.prefetchable) ++prefetchableArrays;
      int rounds = prefetchableArrays > 1 ? 2 : 1;
      for (int round = 0; round < rounds; ++round) {
        for (const auto& a : rep.arrays) {
          if (!a.prefetchable) continue;
          std::vector<TuningParams> cands;
          for (int mult : opt::prefDistMultGrid(config_.reducedGrids())) {
            TuningParams t = cur_;
            PrefParam& pp = t.prefetch[a.name];
            if (mult == 0) {
              pp.enabled = false;
              pp.distBytes = 0;
            } else {
              pp.enabled = true;
              pp.distBytes = mult * line;
            }
            cands.push_back(t);
          }
          commit(cands, eval_.evaluateBatch(cands, "PF DST"));
        }
      }
      endDimension("PF DST");
    }

    // --- PF instruction kind (sequential per-array commits) ------------------
    {
      for (const auto& a : rep.arrays) {
        if (!a.prefetchable) continue;
        auto it = cur_.prefetch.find(a.name);
        if (it == cur_.prefetch.end() || !it->second.enabled) continue;
        ir::PrefKind curKind = it->second.kind;
        std::vector<TuningParams> cands;
        for (ir::PrefKind kind : rep.prefKinds) {
          if (kind == curKind) continue;
          TuningParams t = cur_;
          t.prefetch[a.name].kind = kind;
          cands.push_back(t);
        }
        commit(cands, eval_.evaluateBatch(cands, "PF INS"));
      }
      endDimension("PF INS");
    }

    // --- UR ---------------------------------------------------------------------
    {
      std::vector<TuningParams> cands;
      for (int u : opt::unrollGrid(config_.reducedGrids(), rep.maxUnroll)) {
        if (u == cur_.unroll) continue;
        TuningParams t = cur_;
        t.unroll = u;
        t.accumExpand = std::min(t.accumExpand, u);
        cands.push_back(t);
      }
      sweep("UR", cands);
    }

    // --- AE ---------------------------------------------------------------------
    {
      std::vector<TuningParams> cands;
      if (rep.numAccumulators > 0) {
        for (int m : opt::accumGrid(config_.reducedGrids())) {
          if (m == cur_.accumExpand || m > cur_.unroll) continue;
          TuningParams t = cur_;
          t.accumExpand = m;
          cands.push_back(t);
        }
      }
      sweep("AE", cands);
    }

    // --- restricted 2-D (UR, AE): strongly interacting pair --------------------
    if (rep.numAccumulators > 0 && !config_.reducedGrids()) {
      std::vector<TuningParams> cands;
      std::vector<int> urs = opt::unrollGrid(false, rep.maxUnroll);
      auto near = [&](int v, const std::vector<int>& grid) {
        std::vector<int> out;
        auto it = std::find(grid.begin(), grid.end(), v);
        if (it == grid.end()) return out;
        if (it != grid.begin()) out.push_back(*(it - 1));
        if (it + 1 != grid.end()) out.push_back(*(it + 1));
        return out;
      };
      std::vector<int> urCands = near(cur_.unroll, urs);
      urCands.push_back(cur_.unroll);
      std::vector<int> aeCands = near(cur_.accumExpand, opt::accumGrid(false));
      aeCands.push_back(cur_.accumExpand);
      for (int u : urCands)
        for (int m : aeCands) {
          if (m > u) continue;
          if (u == cur_.unroll && m == cur_.accumExpand) continue;
          TuningParams t = cur_;
          t.unroll = u;
          t.accumExpand = m;
          cands.push_back(t);
        }
      sweep("UR*AE", cands);
    }

    // --- extensions (opt-in): block fetch and CISC indexing ----------------
    if (config_.searchExtensions) {
      {
        std::vector<TuningParams> cands;
        TuningParams t = cur_;
        t.blockFetch = !t.blockFetch;
        cands.push_back(t);
        // Block fetch wants whole blocks per iteration: retry deeper unrolls.
        for (int u : {8, 16, 32}) {
          if (u > rep.maxUnroll) continue;
          TuningParams t2 = cur_;
          t2.blockFetch = true;
          t2.unroll = u;
          cands.push_back(t2);
        }
        sweep("BF", cands);
      }
      {
        std::vector<TuningParams> cands;
        TuningParams t = cur_;
        t.ciscIndexing = !t.ciscIndexing;
        cands.push_back(t);
        sweep("CISC", cands);
      }
    }

    result.best = cur_;
    result.bestCycles = curCycles_;
    result.ledger = ledger_;
    result.evaluations = eval_.evaluations();
    result.ok = true;
    return result;
  }

 private:
  /// Scan the batch results in candidate order, committing every strict
  /// improvement — identical to the serial sweep's running minimum.
  void commit(const std::vector<TuningParams>& cands,
              const std::vector<EvalOutcome>& outcomes) {
    for (size_t i = 0; i < cands.size(); ++i) {
      if (outcomes[i].cycles != 0 && outcomes[i].cycles < curCycles_) {
        curCycles_ = outcomes[i].cycles;
        cur_ = cands[i];
      }
    }
  }

  void endDimension(const std::string& dim) {
    ledger_.push_back({dim, curCycles_});
    eval_.onDimensionEnd(dim, curCycles_, cur_);
  }

  void sweep(const std::string& dim, const std::vector<TuningParams>& cands) {
    if (!cands.empty()) commit(cands, eval_.evaluateBatch(cands, dim));
    endDimension(dim);
  }

  const std::string& source_;
  const arch::MachineConfig& machine_;
  const SearchConfig& config_;
  Evaluator& eval_;
  TuningParams cur_;
  uint64_t curCycles_ = 0;
  std::vector<DimensionResult> ledger_;
};

}  // namespace

std::unique_ptr<Evaluator> makeSerialEvaluator(
    std::string source, const kernels::KernelSpec* spec,
    const arch::MachineConfig& machine, const SearchConfig& config) {
  return std::make_unique<SerialEvaluator>(std::move(source), spec, machine,
                                           config);
}

TuneResult runLineSearch(const std::string& hilSource,
                         const arch::MachineConfig& machine,
                         const SearchConfig& config, Evaluator& evaluator) {
  return LineSearchCore(hilSource, machine, config, evaluator).run();
}

TuneResult tuneKernel(const kernels::KernelSpec& spec,
                      const arch::MachineConfig& machine,
                      const SearchConfig& config) {
  std::string source = spec.hilSource();
  SerialEvaluator eval(source, &spec, machine, config);
  return runLineSearch(source, machine, config, eval);
}

TuneResult tuneSource(const std::string& hilSource,
                      const arch::MachineConfig& machine,
                      const SearchConfig& config) {
  SerialEvaluator eval(hilSource, nullptr, machine, config);
  return runLineSearch(hilSource, machine, config, eval);
}

}  // namespace ifko::search
