#include "search/counters.h"

namespace ifko::search {

namespace {

/// Single source of truth for the uint64 field set: the writer and the
/// parser both walk this visitor, so the two directions cannot drift.
template <typename F>
void forEachField(EvalCounters& c, F&& f) {
  for (size_t i = 0; i < sim::kNumStallCauses; ++i) {
    std::string name = "attr_";
    name += sim::stallCauseName(static_cast<sim::StallCause>(i));
    f(name, c.attr.cycles[i]);
  }
  f("loads", c.mem.loads);
  f("load_hit_l1", c.mem.loadHitL1);
  f("load_hit_l2", c.mem.loadHitL2);
  f("load_miss_l1", c.mem.loadMissL1);
  f("load_miss_mem", c.mem.loadMissMem);
  f("stores", c.mem.stores);
  f("store_hit_l1", c.mem.storeHitL1);
  f("store_hit_l2", c.mem.storeHitL2);
  f("store_rfos", c.mem.storeRFOs);
  f("nt_stores", c.mem.ntStores);
  f("nt_flushes", c.mem.ntFlushes);
  f("pref_issued", c.mem.prefIssued);
  f("pref_dropped", c.mem.prefDropped);
  f("pref_useful", c.mem.prefUseful);
  f("hw_prefetches", c.mem.hwPrefetches);
  f("evict_l1", c.mem.evictL1);
  f("evict_l2", c.mem.evictL2);
  f("writebacks", c.mem.writebacks);
  f("bus_bytes", c.mem.busBytes);
  f("ir_insts", c.irInsts);
  f("repeat_iters", c.repeatableIters);
  f("spills", c.spillSlots);
}

}  // namespace

EvalCounters collectCounters(const fko::CompileResult& compiled,
                             const sim::TimeResult& timed) {
  EvalCounters c;
  c.attr = timed.attr;
  c.mem = timed.mem;
  c.irInsts = compiled.fn.instCount();
  c.repeatableIters = static_cast<uint64_t>(compiled.repeatableIters);
  c.repeatableConverged = compiled.repeatableConverged;
  c.spillSlots = static_cast<uint64_t>(compiled.spillSlots);
  return c;
}

JsonWriter countersJson(const EvalCounters& c) {
  JsonWriter w;
  EvalCounters copy = c;
  forEachField(copy,
               [&](const std::string& key, uint64_t& v) { w.field(key, v); });
  w.field("repeat_converged", c.repeatableConverged);
  return w;
}

EvalCounters parseCounters(const std::map<std::string, JsonValue>& obj) {
  EvalCounters c;
  forEachField(c, [&](const std::string& key, uint64_t& v) {
    auto it = obj.find(key);
    if (it != obj.end() && it->second.kind == JsonValue::Kind::Number)
      v = it->second.asUint();
  });
  if (auto it = obj.find("repeat_converged");
      it != obj.end() && it->second.kind == JsonValue::Kind::Bool)
    c.repeatableConverged = it->second.boolean;
  return c;
}

}  // namespace ifko::search
