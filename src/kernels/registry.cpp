#include "kernels/registry.h"

#include "support/str.h"

namespace ifko::kernels {

namespace {

// HIL sources, straight translations of the ANSI C reference loops from the
// paper's Table 1 (and Figure 6 for dot and iamax).  `@T` is replaced by the
// requested precision.
constexpr std::string_view kSwap = R"(
ROUTINE swap;
PARAMS :: X = VEC(inout), Y = VEC(inout), N = INT;
TYPE @T;
SCALARS :: x, y;
LOOP i = 0, N
LOOP_BODY
  x = X[0];
  y = Y[0];
  Y[0] = x;
  X[0] = y;
  X += 1;
  Y += 1;
LOOP_END
END
)";

constexpr std::string_view kScal = R"(
ROUTINE scal;
PARAMS :: Y = VEC(inout), alpha = SCALAR, N = INT;
TYPE @T;
SCALARS :: y;
LOOP i = 0, N
LOOP_BODY
  y = Y[0];
  y *= alpha;
  Y[0] = y;
  Y += 1;
LOOP_END
END
)";

constexpr std::string_view kCopy = R"(
ROUTINE copy;
PARAMS :: X = VEC(in), Y = VEC(out), N = INT;
TYPE @T;
SCALARS :: x;
LOOP i = 0, N
LOOP_BODY
  x = X[0];
  Y[0] = x;
  X += 1;
  Y += 1;
LOOP_END
END
)";

constexpr std::string_view kAxpy = R"(
ROUTINE axpy;
PARAMS :: X = VEC(in), Y = VEC(inout), alpha = SCALAR, N = INT;
TYPE @T;
SCALARS :: x, y;
LOOP i = 0, N
LOOP_BODY
  x = X[0];
  y = Y[0];
  y += alpha * x;
  Y[0] = y;
  X += 1;
  Y += 1;
LOOP_END
END
)";

constexpr std::string_view kDot = R"(
ROUTINE dot;
PARAMS :: X = VEC(in), Y = VEC(in), N = INT;
TYPE @T;
SCALARS :: x, y, dot;
dot = 0.0;
LOOP i = 0, N
LOOP_BODY
  x = X[0];
  y = Y[0];
  dot += x * y;
  X += 1;
  Y += 1;
LOOP_END
RETURN dot;
END
)";

constexpr std::string_view kAsum = R"(
ROUTINE asum;
PARAMS :: X = VEC(in), N = INT;
TYPE @T;
SCALARS :: x, sum;
sum = 0.0;
LOOP i = 0, N
LOOP_BODY
  x = X[0];
  x = ABS x;
  sum += x;
  X += 1;
LOOP_END
RETURN sum;
END
)";

// The paper's Figure 6(b) formulation: the conditional update is out of
// line (no scoped ifs in HIL), which keeps the fall-through path branch-free.
constexpr std::string_view kIamax = R"(
ROUTINE iamax;
PARAMS :: X = VEC(in), N = INT;
TYPE @T;
SCALARS :: x, amax;
INTS :: imax;
imax = 0;
amax = -1.0;
LOOP i = N, 0, -1
LOOP_BODY
  x = X[0];
  x = ABS x;
  IF (x > amax) GOTO NEWMAX;
ENDOFLOOP:
  X += 1;
LOOP_END
RETURN imax;
NEWMAX:
  amax = x;
  imax = N - i;
  GOTO ENDOFLOOP;
END
)";

// Givens plane rotation — a Level 1 BLAS routine beyond the paper's
// survey, used to exercise the toolchain's generality (two FP scalar
// parameters, two inout vectors).
constexpr std::string_view kRot = R"(
ROUTINE rot;
PARAMS :: X = VEC(inout), Y = VEC(inout), c = SCALAR, s = SCALAR, N = INT;
TYPE @T;
SCALARS :: x, y, xr, yr;
LOOP i = 0, N
LOOP_BODY
  x = X[0];
  y = Y[0];
  xr = c * x + s * y;
  yr = c * y - s * x;
  X[0] = xr;
  Y[0] = yr;
  X += 1;
  Y += 1;
LOOP_END
END
)";

std::string_view rawSource(BlasOp op) {
  switch (op) {
    case BlasOp::Swap: return kSwap;
    case BlasOp::Scal: return kScal;
    case BlasOp::Copy: return kCopy;
    case BlasOp::Axpy: return kAxpy;
    case BlasOp::Dot: return kDot;
    case BlasOp::Asum: return kAsum;
    case BlasOp::Iamax: return kIamax;
    case BlasOp::Rot: return kRot;
  }
  return "";
}

}  // namespace

std::string_view opName(BlasOp op) {
  switch (op) {
    case BlasOp::Swap: return "swap";
    case BlasOp::Scal: return "scal";
    case BlasOp::Copy: return "copy";
    case BlasOp::Axpy: return "axpy";
    case BlasOp::Dot: return "dot";
    case BlasOp::Asum: return "asum";
    case BlasOp::Iamax: return "iamax";
    case BlasOp::Rot: return "rot";
  }
  return "?";
}

std::string KernelSpec::name() const {
  std::string p = prec == ir::Scal::F32 ? "s" : "d";
  if (op == BlasOp::Iamax) return "i" + p + "amax";
  return p + std::string(opName(op));
}

double KernelSpec::flops(int64_t n) const {
  switch (op) {
    case BlasOp::Swap:
    case BlasOp::Scal:
    case BlasOp::Copy:
      return static_cast<double>(n);
    case BlasOp::Axpy:
    case BlasOp::Dot:
    case BlasOp::Asum:
    case BlasOp::Iamax:
      return 2.0 * static_cast<double>(n);
    case BlasOp::Rot:
      return 6.0 * static_cast<double>(n);
  }
  return 0;
}

int KernelSpec::numVecs() const {
  switch (op) {
    case BlasOp::Scal:
    case BlasOp::Asum:
    case BlasOp::Iamax:
      return 1;
    default:
      return 2;
  }
}

bool KernelSpec::hasAlpha() const {
  return op == BlasOp::Scal || op == BlasOp::Axpy || op == BlasOp::Rot;
}

char KernelSpec::retClass() const {
  switch (op) {
    case BlasOp::Dot:
    case BlasOp::Asum:
      return 'f';
    case BlasOp::Iamax:
      return 'i';
    default:
      return 0;
  }
}

std::string KernelSpec::hilSource() const {
  return replaceAll(std::string(rawSource(op)), "@T",
                    prec == ir::Scal::F32 ? "float" : "double");
}

const std::vector<KernelSpec>& allKernels() {
  static const std::vector<KernelSpec> kAll = [] {
    std::vector<KernelSpec> v;
    for (BlasOp op : allOps())
      for (ir::Scal p : {ir::Scal::F32, ir::Scal::F64}) v.push_back({op, p});
    return v;
  }();
  return kAll;
}

const std::vector<KernelSpec>& extendedKernels() {
  static const std::vector<KernelSpec> kAll = [] {
    std::vector<KernelSpec> v = allKernels();
    for (ir::Scal p : {ir::Scal::F32, ir::Scal::F64})
      v.push_back({BlasOp::Rot, p});
    return v;
  }();
  return kAll;
}

const std::vector<BlasOp>& allOps() {
  static const std::vector<BlasOp> kOps = {
      BlasOp::Swap, BlasOp::Copy, BlasOp::Asum, BlasOp::Axpy,
      BlasOp::Dot,  BlasOp::Scal, BlasOp::Iamax};
  return kOps;
}

}  // namespace ifko::kernels
