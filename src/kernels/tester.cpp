#include "kernels/tester.h"

#include <cmath>
#include <sstream>

#include "kernels/reference.h"
#include "support/rng.h"

namespace ifko::kernels {

std::vector<sim::ArgValue> KernelData::args(
    const std::vector<ir::Param>& params) const {
  std::vector<sim::ArgValue> out;
  double scalar = alpha;
  for (const auto& p : params) {
    if (p.isPointer()) {
      // Single-vector kernels (scal names its vector Y) store it at xAddr.
      bool useY = p.name == "Y" && yAddr != 0;
      out.emplace_back(static_cast<int64_t>(useY ? yAddr : xAddr));
    } else if (p.kind == ir::ParamKind::Int) {
      out.emplace_back(n);
    } else {
      // Successive FP scalars (e.g. rot's c and s) get distinct values.
      out.emplace_back(scalar);
      scalar = -scalar * 0.5;
    }
  }
  return out;
}

namespace {

template <typename T>
void fillVector(sim::Memory& mem, uint64_t addr, int64_t n, SplitMix64& rng) {
  for (int64_t i = 0; i < n; ++i)
    mem.write<T>(addr + static_cast<uint64_t>(i) * sizeof(T),
                 static_cast<T>(rng.uniform(-1.0, 1.0)));
}

template <typename T>
std::vector<T> readVector(const sim::Memory& mem, uint64_t addr, int64_t n) {
  std::vector<T> out(static_cast<size_t>(n));
  for (int64_t i = 0; i < n; ++i)
    out[static_cast<size_t>(i)] =
        mem.read<T>(addr + static_cast<uint64_t>(i) * sizeof(T));
  return out;
}

template <typename T>
TestOutcome testKernelT(const KernelSpec& spec, const ir::Function& fn,
                        int64_t n, uint64_t seed) {
  KernelData data = makeKernelData(spec, n, seed);
  std::vector<T> hx = readVector<T>(*data.mem, data.xAddr, n);
  std::vector<T> hy;
  if (spec.numVecs() == 2) hy = readVector<T>(*data.mem, data.yAddr, n);
  T alpha = static_cast<T>(data.alpha);

  // Reference result on host copies.
  double refFp = 0;
  int64_t refIdx = 0;
  switch (spec.op) {
    case BlasOp::Swap: refSwap<T>(hx, hy); break;
    case BlasOp::Scal: refScal<T>(hx, alpha); break;  // single vector: "Y"
    case BlasOp::Copy: refCopy<T>(hx, hy); break;
    case BlasOp::Axpy: refAxpy<T>(hx, hy, alpha); break;
    case BlasOp::Dot: refFp = refDot<T>(hx, hy); break;
    case BlasOp::Asum: refFp = refAsum<T>(hx); break;
    case BlasOp::Iamax: refIdx = refIamax<T>(std::span<const T>(hx)); break;
    case BlasOp::Rot:
      refRot<T>(hx, hy, alpha, static_cast<T>(-data.alpha * 0.5));
      break;
  }

  sim::Interp interp(fn, *data.mem);
  sim::RunResult run;
  try {
    run = interp.run(data.args(fn));
  } catch (const std::exception& e) {
    return {false, std::string("kernel faulted: ") + e.what()};
  }

  auto fail = [&](const std::string& msg) { return TestOutcome{false, msg}; };

  // Elementwise outputs must match exactly.
  auto checkVec = [&](uint64_t addr, const std::vector<T>& want,
                      const char* which) -> TestOutcome {
    std::vector<T> got = readVector<T>(*data.mem, addr, n);
    for (int64_t i = 0; i < n; ++i) {
      if (got[static_cast<size_t>(i)] != want[static_cast<size_t>(i)]) {
        std::ostringstream os;
        os << spec.name() << ": " << which << "[" << i
           << "] = " << got[static_cast<size_t>(i)] << ", expected "
           << want[static_cast<size_t>(i)];
        return {false, os.str()};
      }
    }
    return {true, ""};
  };

  switch (spec.op) {
    case BlasOp::Swap: {
      auto r = checkVec(data.xAddr, hx, "X");
      if (!r.ok) return r;
      return checkVec(data.yAddr, hy, "Y");
    }
    case BlasOp::Scal:
      return checkVec(data.xAddr, hx, "Y");
    case BlasOp::Copy:
    case BlasOp::Axpy:
      return checkVec(data.yAddr, hy, "Y");
    case BlasOp::Dot:
    case BlasOp::Asum: {
      if (!run.fpResult) return fail(spec.name() + ": missing fp result");
      double got = *run.fpResult;
      double tol = spec.prec == ir::Scal::F32 ? 5e-3 : 1e-8;
      double scale = std::max(1.0, std::fabs(refFp));
      if (std::fabs(got - refFp) > tol * scale) {
        std::ostringstream os;
        os << spec.name() << ": result " << got << ", expected " << refFp;
        return fail(os.str());
      }
      return {true, ""};
    }
    case BlasOp::Rot: {
      auto r = checkVec(data.xAddr, hx, "X");
      if (!r.ok) return r;
      return checkVec(data.yAddr, hy, "Y");
    }
    case BlasOp::Iamax: {
      if (!run.intResult) return fail(spec.name() + ": missing int result");
      if (*run.intResult != refIdx) {
        std::ostringstream os;
        os << spec.name() << ": index " << *run.intResult << ", expected "
           << refIdx;
        return fail(os.str());
      }
      return {true, ""};
    }
  }
  return {true, ""};
}

}  // namespace

KernelData makeKernelData(const KernelSpec& spec, int64_t n, uint64_t seed,
                          size_t extraBytes) {
  const size_t esize = scalBytes(spec.prec);
  const size_t vecBytes = static_cast<size_t>(n) * esize;
  KernelData data;
  // Two vectors + gap + headroom.  Vectors are 64-byte aligned as the ATLAS
  // timers allocate them.
  data.mem = std::make_unique<sim::Memory>(2 * vecBytes + extraBytes + 4096);
  data.n = n;
  SplitMix64 rng(seed);
  data.xAddr = data.mem->allocate(std::max<size_t>(vecBytes, 64), 64);
  if (spec.prec == ir::Scal::F32)
    fillVector<float>(*data.mem, data.xAddr, n, rng);
  else
    fillVector<double>(*data.mem, data.xAddr, n, rng);
  if (spec.numVecs() == 2) {
    // A 192-byte gap keeps X and Y from sharing a cache line while still
    // letting them conflict in the cache like real consecutive mallocs.
    data.yAddr = data.mem->allocate(std::max<size_t>(vecBytes, 64) + 192, 64) + 192;
    if (spec.prec == ir::Scal::F32)
      fillVector<float>(*data.mem, data.yAddr, n, rng);
    else
      fillVector<double>(*data.mem, data.yAddr, n, rng);
  }
  return data;
}

TestOutcome testKernel(const KernelSpec& spec, const ir::Function& fn,
                       int64_t n, uint64_t seed) {
  if (spec.prec == ir::Scal::F32) return testKernelT<float>(spec, fn, n, seed);
  return testKernelT<double>(spec, fn, n, seed);
}

}  // namespace ifko::kernels
