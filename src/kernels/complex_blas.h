// Complex Level 1 BLAS kernels (cscal/zscal, caxpy/zaxpy).
//
// The paper: "There are two main types of interest, real and complex
// numbers … In this work, we concentrate on single and double precision
// real numbers."  These kernels cover the deferred type: complex values in
// the standard interleaved [re, im, re, im, …] layout, expressed directly
// in HIL (two loads, the four-multiply rotation, two stores, a stride-2
// bump).  The stride keeps them off the SIMD path — real complex
// vectorization needs the shuffle patterns of [3] — but every other
// transform (UR/LC/PF/WNT, and the extensions) applies.
#pragma once

#include <cstdint>
#include <string>

#include "ir/function.h"
#include "ir/type.h"

namespace ifko::kernels {

/// y[i] *= (ar + ai*i), n complex elements.
[[nodiscard]] std::string cscalSource(ir::Scal prec);
/// y[i] += (ar + ai*i) * x[i], n complex elements.
[[nodiscard]] std::string caxpySource(ir::Scal prec);

struct ComplexOutcome {
  bool ok = true;
  std::string message;
};

/// Checks a compiled cscal/caxpy against a host-side complex reference on
/// n complex elements.
[[nodiscard]] ComplexOutcome testCscal(const ir::Function& fn, int64_t n,
                                       uint64_t seed = 42);
[[nodiscard]] ComplexOutcome testCaxpy(const ir::Function& fn, int64_t n,
                                       uint64_t seed = 42);

}  // namespace ifko::kernels
