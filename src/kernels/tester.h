// The tester from the paper's Figure 1: runs a compiled kernel on seeded
// data in the simulated machine's memory and checks the result against the
// reference implementation ("unnecessary in theory, but useful in
// practice").  Also provides the operand-placement helper shared with the
// timer.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "ir/function.h"
#include "kernels/registry.h"
#include "sim/interp.h"
#include "sim/memory.h"

namespace ifko::kernels {

/// Kernel operands placed in a simulated memory image.
struct KernelData {
  std::unique_ptr<sim::Memory> mem;
  uint64_t xAddr = 0;
  uint64_t yAddr = 0;
  int64_t n = 0;
  double alpha = 0.75;

  /// Arguments in the order of `fn`'s parameter list (matched by name for
  /// vectors, by kind for alpha/N).
  [[nodiscard]] std::vector<sim::ArgValue> args(const ir::Function& fn) const {
    return args(fn.params);
  }
  /// Same, from a bare parameter list (used by the pre-decoded timing path,
  /// which does not keep the ir::Function around).
  [[nodiscard]] std::vector<sim::ArgValue> args(
      const std::vector<ir::Param>& params) const;

  /// A deep copy (fresh memory image).  Timed runs mutate their operands,
  /// so repeated evaluations clone a pristine template instead of paying
  /// the data-generation cost again; the clone is bit-for-bit the image
  /// makeKernelData would produce.
  [[nodiscard]] KernelData clone() const {
    KernelData out;
    out.mem = std::make_unique<sim::Memory>(*mem);
    out.xAddr = xAddr;
    out.yAddr = yAddr;
    out.n = n;
    out.alpha = alpha;
    return out;
  }
};

/// Allocates and initializes operands for `spec` at length `n` with
/// reproducible data.  `extraBytes` adds headroom (e.g. spill areas for many
/// timing runs).
[[nodiscard]] KernelData makeKernelData(const KernelSpec& spec, int64_t n,
                                        uint64_t seed = 42,
                                        size_t extraBytes = 1 << 20);

struct TestOutcome {
  bool ok = true;
  std::string message;
};

/// Executes `fn` against the reference implementation of `spec` on fresh
/// data of length `n`.  Element results must match bitwise (the transforms
/// never change elementwise arithmetic); reduction results are compared with
/// a precision-appropriate tolerance since vectorization and accumulator
/// expansion reassociate the sum.
[[nodiscard]] TestOutcome testKernel(const KernelSpec& spec,
                                     const ir::Function& fn, int64_t n,
                                     uint64_t seed = 42);

}  // namespace ifko::kernels
