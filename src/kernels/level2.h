// Level 2 BLAS kernels built on the nested-loop support — the direction the
// paper points at ("outer-loop specialized transformations... which we plan
// to add"): the inner (tuned) loop gets the full SV/UR/LC/AE/PF/WNT
// treatment while the outer row loop lowers plainly.
//
// gemv: y = A*x (row-major M x N); ger: A += alpha * x * y^T.
#pragma once

#include <cstdint>
#include <string>

#include "arch/machine.h"
#include "ir/function.h"
#include "ir/type.h"
#include "sim/timer.h"

namespace ifko::kernels {

/// HIL source for y = A*x (row-major, inner loop over columns).
[[nodiscard]] std::string gemvSource(ir::Scal prec);
/// HIL source for A += alpha * x * y^T (row-major, inner loop over columns).
[[nodiscard]] std::string gerSource(ir::Scal prec);

struct L2Outcome {
  bool ok = true;
  std::string message;
};

/// Runs the compiled gemv/ger against a host-side reference on an MxN
/// problem with reproducible data.
[[nodiscard]] L2Outcome testGemv(const ir::Function& fn, int64_t m, int64_t n,
                                 uint64_t seed = 42);
[[nodiscard]] L2Outcome testGer(const ir::Function& fn, int64_t m, int64_t n,
                                uint64_t seed = 42);

/// Times a compiled Level 2 kernel on the simulated machine.
[[nodiscard]] sim::TimeResult timeGemv(const arch::MachineConfig& machine,
                                       const ir::Function& fn, int64_t m,
                                       int64_t n, sim::TimeContext ctx,
                                       uint64_t seed = 42);

}  // namespace ifko::kernels
