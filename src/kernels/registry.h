// Registry of the surveyed Level 1 BLAS kernels (paper Table 1).
//
// Each kernel exists in single (s) and double (d) precision; the registry
// carries the HIL source, the FLOP accounting used for MFLOPS reporting
// (copy/swap do no FP arithmetic but are conventionally counted at N, see
// the paper's Table 1), and the argument shape.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "ir/type.h"

namespace ifko::kernels {

enum class BlasOp : uint8_t { Swap, Scal, Copy, Axpy, Dot, Asum, Iamax, Rot };

struct KernelSpec {
  BlasOp op;
  ir::Scal prec;  ///< F32 or F64

  /// BLAS-style name: sswap, ddot, isamax, ...
  [[nodiscard]] std::string name() const;
  /// FLOPs charged per call at length n (paper Table 1 FLOPs column).
  [[nodiscard]] double flops(int64_t n) const;
  /// Number of vector operands (X[,Y]).
  [[nodiscard]] int numVecs() const;
  [[nodiscard]] bool hasAlpha() const;
  /// 'f' fp return (dot/asum), 'i' int return (iamax), 0 none.
  [[nodiscard]] char retClass() const;
  /// HIL source with the precision substituted in.
  [[nodiscard]] std::string hilSource() const;
};

[[nodiscard]] std::string_view opName(BlasOp op);

/// The paper's 14 surveyed kernels in its presentation order:
/// swap, copy, asum, axpy, dot, scal, iamax — s then d within each.
[[nodiscard]] const std::vector<KernelSpec>& allKernels();

/// The paper's 7 operations (both precisions share one spec shape).
[[nodiscard]] const std::vector<BlasOp>& allOps();

/// allKernels() plus kernels beyond the paper's survey (currently rot, the
/// Givens plane rotation) — used to exercise the toolchain's generality.
[[nodiscard]] const std::vector<KernelSpec>& extendedKernels();

}  // namespace ifko::kernels
