// ANSI-C-style reference implementations of the surveyed Level 1 BLAS
// (paper Table 1).  These define correct behaviour for the tester and serve
// as the semantic ground truth for every transformed kernel.
#pragma once

#include <cmath>
#include <cstdint>
#include <span>

namespace ifko::kernels {

template <typename T>
void refSwap(std::span<T> x, std::span<T> y) {
  for (size_t i = 0; i < x.size(); ++i) {
    T tmp = y[i];
    y[i] = x[i];
    x[i] = tmp;
  }
}

template <typename T>
void refScal(std::span<T> y, T alpha) {
  for (size_t i = 0; i < y.size(); ++i) y[i] *= alpha;
}

template <typename T>
void refCopy(std::span<const T> x, std::span<T> y) {
  for (size_t i = 0; i < x.size(); ++i) y[i] = x[i];
}

template <typename T>
void refAxpy(std::span<const T> x, std::span<T> y, T alpha) {
  for (size_t i = 0; i < x.size(); ++i) y[i] += alpha * x[i];
}

template <typename T>
[[nodiscard]] T refDot(std::span<const T> x, std::span<const T> y) {
  T dot = 0;
  for (size_t i = 0; i < x.size(); ++i) dot += y[i] * x[i];
  return dot;
}

template <typename T>
[[nodiscard]] T refAsum(std::span<const T> x) {
  T sum = 0;
  for (size_t i = 0; i < x.size(); ++i) sum += std::fabs(x[i]);
  return sum;
}

template <typename T>
void refRot(std::span<T> x, std::span<T> y, T c, T s) {
  for (size_t i = 0; i < x.size(); ++i) {
    T xi = c * x[i] + s * y[i];
    T yi = c * y[i] - s * x[i];
    x[i] = xi;
    y[i] = yi;
  }
}

/// Index of the first element of maximum absolute value; 0 for empty input.
template <typename T>
[[nodiscard]] int64_t refIamax(std::span<const T> x) {
  if (x.empty()) return 0;
  int64_t imax = 0;
  T maxval = std::fabs(x[0]);
  for (size_t i = 1; i < x.size(); ++i) {
    if (std::fabs(x[i]) > maxval) {
      imax = static_cast<int64_t>(i);
      maxval = std::fabs(x[i]);
    }
  }
  return imax;
}

}  // namespace ifko::kernels
