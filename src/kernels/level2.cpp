#include "kernels/level2.h"

#include <cmath>
#include <sstream>
#include <vector>

#include "sim/interp.h"
#include "sim/memsys.h"
#include "sim/timing.h"
#include "support/rng.h"
#include "support/str.h"

namespace ifko::kernels {

namespace {

constexpr std::string_view kGemv = R"(
# y = A*x, row-major M x N.  The inner dot-product loop is the tuned one;
# x is re-read every row (nopref: resident after the first row), and the
# pointer rewind `X -= N` returns to the row start.
ROUTINE gemv;
PARAMS :: A = VEC(in), X = VEC(in,nopref), Y = VEC(out), M = INT, N = INT;
TYPE @T;
SCALARS :: a, x, acc;
LOOP r = 0, M
LOOP_BODY
  acc = 0.0;
  LOOP i = 0, N
  LOOP_BODY
    a = A[0];
    x = X[0];
    acc += a * x;
    A += 1;
    X += 1;
  LOOP_END
  Y[0] = acc;
  X -= N;
  Y += 1;
LOOP_END
END
)";

constexpr std::string_view kGer = R"(
# A += alpha * x * y^T, row-major M x N.  alpha*x[r] is computed in the
# outer body: a loop-invariant input the vectorizer broadcasts.
ROUTINE ger;
PARAMS :: A = VEC(inout), X = VEC(in,nopref), Y = VEC(in,nopref), alpha = SCALAR, M = INT, N = INT;
TYPE @T;
SCALARS :: a, xv, yv, ax;
LOOP r = 0, M
LOOP_BODY
  xv = X[0];
  ax = alpha * xv;
  LOOP i = 0, N
  LOOP_BODY
    a = A[0];
    yv = Y[0];
    a += ax * yv;
    A[0] = a;
    A += 1;
    Y += 1;
  LOOP_END
  Y -= N;
  X += 1;
LOOP_END
END
)";

std::string instantiate(std::string_view src, ir::Scal prec) {
  return replaceAll(std::string(src), "@T",
                    prec == ir::Scal::F32 ? "float" : "double");
}

ir::Scal precOf(const ir::Function& fn) {
  for (const auto& p : fn.params)
    if (p.isPointer()) return p.elemType();
  return ir::Scal::F64;
}

/// Operand layout for an MxN problem: A (m*n), x, y, scalars, M, N.
struct L2Data {
  std::unique_ptr<sim::Memory> mem;
  uint64_t aAddr = 0, xAddr = 0, yAddr = 0;
  double alpha = 0.75;

  std::vector<sim::ArgValue> args(const ir::Function& fn, int64_t m,
                                  int64_t n) const {
    std::vector<sim::ArgValue> out;
    for (const auto& p : fn.params) {
      if (p.isPointer()) {
        uint64_t addr = p.name == "A" ? aAddr : p.name == "X" ? xAddr : yAddr;
        out.emplace_back(static_cast<int64_t>(addr));
      } else if (p.kind == ir::ParamKind::Int) {
        out.emplace_back(p.name == "M" ? m : n);
      } else {
        out.emplace_back(alpha);
      }
    }
    return out;
  }
};

template <typename T>
L2Data makeL2Data(int64_t m, int64_t n, uint64_t seed) {
  L2Data d;
  size_t bytes = static_cast<size_t>(m) * static_cast<size_t>(n) * sizeof(T) +
                 static_cast<size_t>(m + n) * sizeof(T) + (1 << 21);
  d.mem = std::make_unique<sim::Memory>(bytes);
  SplitMix64 rng(seed);
  auto fill = [&](int64_t count) {
    uint64_t addr = d.mem->allocate(
        std::max<size_t>(static_cast<size_t>(count) * sizeof(T), 64), 64);
    for (int64_t i = 0; i < count; ++i)
      d.mem->write<T>(addr + static_cast<uint64_t>(i) * sizeof(T),
                      static_cast<T>(rng.uniform(-1.0, 1.0)));
    return addr;
  };
  d.aAddr = fill(m * n);
  d.xAddr = fill(std::max<int64_t>(m, n));
  d.yAddr = fill(std::max<int64_t>(m, n));
  return d;
}

template <typename T>
std::vector<T> readVec(const sim::Memory& mem, uint64_t addr, int64_t count) {
  std::vector<T> out(static_cast<size_t>(count));
  for (int64_t i = 0; i < count; ++i)
    out[static_cast<size_t>(i)] =
        mem.read<T>(addr + static_cast<uint64_t>(i) * sizeof(T));
  return out;
}

template <typename T>
L2Outcome testGemvT(const ir::Function& fn, int64_t m, int64_t n,
                    uint64_t seed) {
  L2Data d = makeL2Data<T>(m, n, seed);
  auto A = readVec<T>(*d.mem, d.aAddr, m * n);
  auto x = readVec<T>(*d.mem, d.xAddr, n);

  sim::Interp interp(fn, *d.mem);
  try {
    interp.run(d.args(fn, m, n));
  } catch (const std::exception& e) {
    return {false, std::string("gemv faulted: ") + e.what()};
  }

  for (int64_t r = 0; r < m; ++r) {
    T want = 0;
    for (int64_t c = 0; c < n; ++c)
      want += A[static_cast<size_t>(r * n + c)] * x[static_cast<size_t>(c)];
    T got = d.mem->read<T>(d.yAddr + static_cast<uint64_t>(r) * sizeof(T));
    double tol = sizeof(T) == 4 ? 5e-3 : 1e-8;
    if (std::fabs(static_cast<double>(got - want)) >
        tol * std::max(1.0, std::fabs(static_cast<double>(want)))) {
      std::ostringstream os;
      os << "gemv: y[" << r << "] = " << got << ", expected " << want;
      return {false, os.str()};
    }
  }
  return {};
}

template <typename T>
L2Outcome testGerT(const ir::Function& fn, int64_t m, int64_t n,
                   uint64_t seed) {
  L2Data d = makeL2Data<T>(m, n, seed);
  auto A = readVec<T>(*d.mem, d.aAddr, m * n);
  auto x = readVec<T>(*d.mem, d.xAddr, m);
  auto y = readVec<T>(*d.mem, d.yAddr, n);
  T alpha = static_cast<T>(d.alpha);

  sim::Interp interp(fn, *d.mem);
  try {
    interp.run(d.args(fn, m, n));
  } catch (const std::exception& e) {
    return {false, std::string("ger faulted: ") + e.what()};
  }

  for (int64_t r = 0; r < m; ++r) {
    // Same arithmetic shape as the kernel: ax = alpha*x[r]; a += ax*y[c].
    T ax = alpha * x[static_cast<size_t>(r)];
    for (int64_t c = 0; c < n; ++c) {
      T want = A[static_cast<size_t>(r * n + c)] + ax * y[static_cast<size_t>(c)];
      T got = d.mem->read<T>(d.aAddr +
                             static_cast<uint64_t>(r * n + c) * sizeof(T));
      if (got != want) {
        std::ostringstream os;
        os << "ger: A[" << r << "," << c << "] = " << got << ", expected "
           << want;
        return {false, os.str()};
      }
    }
  }
  return {};
}

}  // namespace

std::string gemvSource(ir::Scal prec) { return instantiate(kGemv, prec); }
std::string gerSource(ir::Scal prec) { return instantiate(kGer, prec); }

L2Outcome testGemv(const ir::Function& fn, int64_t m, int64_t n,
                   uint64_t seed) {
  return precOf(fn) == ir::Scal::F32 ? testGemvT<float>(fn, m, n, seed)
                                     : testGemvT<double>(fn, m, n, seed);
}

L2Outcome testGer(const ir::Function& fn, int64_t m, int64_t n,
                  uint64_t seed) {
  return precOf(fn) == ir::Scal::F32 ? testGerT<float>(fn, m, n, seed)
                                     : testGerT<double>(fn, m, n, seed);
}

sim::TimeResult timeGemv(const arch::MachineConfig& machine,
                         const ir::Function& fn, int64_t m, int64_t n,
                         sim::TimeContext ctx, uint64_t seed) {
  L2Data d = precOf(fn) == ir::Scal::F32 ? makeL2Data<float>(m, n, seed)
                                         : makeL2Data<double>(m, n, seed);
  const size_t esize = scalBytes(precOf(fn));
  sim::MemSystem mem(machine);
  if (ctx == sim::TimeContext::InL2) {
    mem.warm(d.aAddr, static_cast<uint64_t>(m * n) * esize);
    mem.warm(d.xAddr, static_cast<uint64_t>(std::max(m, n)) * esize);
    mem.warm(d.yAddr, static_cast<uint64_t>(std::max(m, n)) * esize);
  }
  sim::TimingModel timing(machine, mem);
  sim::Interp interp(fn, *d.mem, &timing);
  auto run = interp.run(d.args(fn, m, n));

  sim::TimeResult out;
  out.cycles = timing.cycles();
  out.dynInsts = run.dynInsts;
  out.mem = mem.stats();
  out.core = timing.stats();
  return out;
}

}  // namespace ifko::kernels
