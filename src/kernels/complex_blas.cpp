#include "kernels/complex_blas.h"

#include <memory>
#include <sstream>
#include <vector>

#include "sim/interp.h"
#include "sim/memsys.h"
#include "support/rng.h"
#include "support/str.h"

namespace ifko::kernels {

namespace {

constexpr std::string_view kCscal = R"(
# y *= alpha over interleaved complex values; N counts complex elements.
ROUTINE cscal;
PARAMS :: Y = VEC(inout), ar = SCALAR, ai = SCALAR, N = INT;
TYPE @T;
SCALARS :: re, im, tr, ti;
LOOP i = 0, N
LOOP_BODY
  re = Y[0];
  im = Y[1];
  tr = ar * re - ai * im;
  ti = ar * im + ai * re;
  Y[0] = tr;
  Y[1] = ti;
  Y += 2;
LOOP_END
END
)";

constexpr std::string_view kCaxpy = R"(
# y += alpha * x over interleaved complex values; N counts complex elements.
ROUTINE caxpy;
PARAMS :: X = VEC(in), Y = VEC(inout), ar = SCALAR, ai = SCALAR, N = INT;
TYPE @T;
SCALARS :: xr, xi, yr, yi;
LOOP i = 0, N
LOOP_BODY
  xr = X[0];
  xi = X[1];
  yr = Y[0];
  yi = Y[1];
  yr = yr + (ar * xr - ai * xi);
  yi = yi + (ar * xi + ai * xr);
  Y[0] = yr;
  Y[1] = yi;
  X += 2;
  Y += 2;
LOOP_END
END
)";

struct ComplexData {
  std::unique_ptr<sim::Memory> mem;
  uint64_t xAddr = 0, yAddr = 0;
  double ar = 0.75, ai = -0.375;
};

template <typename T>
ComplexData makeData(int64_t n, uint64_t seed, bool twoVecs) {
  ComplexData d;
  size_t bytes = static_cast<size_t>(n) * 2 * sizeof(T);
  d.mem = std::make_unique<sim::Memory>(2 * bytes + (1 << 20));
  SplitMix64 rng(seed);
  auto fill = [&] {
    uint64_t addr = d.mem->allocate(std::max<size_t>(bytes, 64), 64);
    for (int64_t i = 0; i < 2 * n; ++i)
      d.mem->write<T>(addr + static_cast<uint64_t>(i) * sizeof(T),
                      static_cast<T>(rng.uniform(-1.0, 1.0)));
    return addr;
  };
  if (twoVecs) d.xAddr = fill();
  d.yAddr = fill();
  return d;
}

std::vector<sim::ArgValue> buildArgs(const ir::Function& fn,
                                     const ComplexData& d, int64_t n) {
  std::vector<sim::ArgValue> args;
  for (const auto& p : fn.params) {
    if (p.isPointer())
      args.emplace_back(static_cast<int64_t>(p.name == "X" ? d.xAddr : d.yAddr));
    else if (p.kind == ir::ParamKind::Int)
      args.emplace_back(n);
    else
      args.emplace_back(p.name == "ar" ? d.ar : d.ai);
  }
  return args;
}

ir::Scal precOf(const ir::Function& fn) {
  for (const auto& p : fn.params)
    if (p.isPointer()) return p.elemType();
  return ir::Scal::F64;
}

template <typename T>
ComplexOutcome check(const sim::Memory& mem, uint64_t addr, int64_t n,
                     const std::vector<T>& want, const char* which) {
  for (int64_t i = 0; i < 2 * n; ++i) {
    T got = mem.read<T>(addr + static_cast<uint64_t>(i) * sizeof(T));
    if (got != want[static_cast<size_t>(i)]) {
      std::ostringstream os;
      os << which << "[" << i / 2 << "]." << (i % 2 ? "im" : "re") << " = "
         << got << ", expected " << want[static_cast<size_t>(i)];
      return {false, os.str()};
    }
  }
  return {};
}

template <typename T>
ComplexOutcome testCscalT(const ir::Function& fn, int64_t n, uint64_t seed) {
  ComplexData d = makeData<T>(n, seed, /*twoVecs=*/false);
  std::vector<T> want(static_cast<size_t>(2 * n));
  T ar = static_cast<T>(d.ar), ai = static_cast<T>(d.ai);
  for (int64_t i = 0; i < n; ++i) {
    // Same expression shape as the kernel for bitwise agreement.
    T re = d.mem->read<T>(d.yAddr + static_cast<uint64_t>(2 * i) * sizeof(T));
    T im = d.mem->read<T>(d.yAddr + static_cast<uint64_t>(2 * i + 1) * sizeof(T));
    want[static_cast<size_t>(2 * i)] = ar * re - ai * im;
    want[static_cast<size_t>(2 * i + 1)] = ar * im + ai * re;
  }
  sim::Interp interp(fn, *d.mem);
  try {
    interp.run(buildArgs(fn, d, n));
  } catch (const std::exception& e) {
    return {false, std::string("cscal faulted: ") + e.what()};
  }
  return check<T>(*d.mem, d.yAddr, n, want, "y");
}

template <typename T>
ComplexOutcome testCaxpyT(const ir::Function& fn, int64_t n, uint64_t seed) {
  ComplexData d = makeData<T>(n, seed, /*twoVecs=*/true);
  std::vector<T> want(static_cast<size_t>(2 * n));
  T ar = static_cast<T>(d.ar), ai = static_cast<T>(d.ai);
  for (int64_t i = 0; i < n; ++i) {
    T xr = d.mem->read<T>(d.xAddr + static_cast<uint64_t>(2 * i) * sizeof(T));
    T xi = d.mem->read<T>(d.xAddr + static_cast<uint64_t>(2 * i + 1) * sizeof(T));
    T yr = d.mem->read<T>(d.yAddr + static_cast<uint64_t>(2 * i) * sizeof(T));
    T yi = d.mem->read<T>(d.yAddr + static_cast<uint64_t>(2 * i + 1) * sizeof(T));
    want[static_cast<size_t>(2 * i)] = yr + (ar * xr - ai * xi);
    want[static_cast<size_t>(2 * i + 1)] = yi + (ar * xi + ai * xr);
  }
  sim::Interp interp(fn, *d.mem);
  try {
    interp.run(buildArgs(fn, d, n));
  } catch (const std::exception& e) {
    return {false, std::string("caxpy faulted: ") + e.what()};
  }
  return check<T>(*d.mem, d.yAddr, n, want, "y");
}

}  // namespace

std::string cscalSource(ir::Scal prec) {
  return replaceAll(std::string(kCscal), "@T",
                    prec == ir::Scal::F32 ? "float" : "double");
}

std::string caxpySource(ir::Scal prec) {
  return replaceAll(std::string(kCaxpy), "@T",
                    prec == ir::Scal::F32 ? "float" : "double");
}

ComplexOutcome testCscal(const ir::Function& fn, int64_t n, uint64_t seed) {
  return precOf(fn) == ir::Scal::F32 ? testCscalT<float>(fn, n, seed)
                                     : testCscalT<double>(fn, n, seed);
}

ComplexOutcome testCaxpy(const ir::Function& fn, int64_t n, uint64_t seed) {
  return precOf(fn) == ir::Scal::F32 ? testCaxpyT<float>(fn, n, seed)
                                     : testCaxpyT<double>(fn, n, seed);
}

}  // namespace ifko::kernels
