#include "ir/verifier.h"

#include <set>
#include <sstream>
#include <unordered_map>
#include <unordered_set>

#include "ir/cfg.h"

namespace ifko::ir {

namespace {

class Verifier {
 public:
  explicit Verifier(const Function& fn) : fn_(fn) {}

  std::vector<std::string> run() {
    checkBlocks();
    checkInstructions();
    if (!fn_.regAllocated) checkDefBeforeUse();
    return std::move(problems_);
  }

 private:
  template <typename... Args>
  void problem(Args&&... args) {
    std::ostringstream os;
    (os << ... << args);
    problems_.push_back(os.str());
  }

  void checkBlocks() {
    std::set<int32_t> ids;
    for (const auto& bb : fn_.blocks) {
      if (!ids.insert(bb.id).second) problem("duplicate block id bb", bb.id);
    }
    for (size_t i = 0; i < fn_.blocks.size(); ++i) {
      const BasicBlock& bb = fn_.blocks[i];
      for (size_t j = 0; j < bb.insts.size(); ++j) {
        const Inst& in = bb.insts[j];
        const OpInfo& info = opInfo(in.op);
        bool isLast = j + 1 == bb.insts.size();
        // A conditional branch may be followed by the block's final
        // unconditional jump (the explicit-else ending).
        bool isJccBeforeFinalJmp = in.op == Op::Jcc &&
                                   j + 2 == bb.insts.size() &&
                                   bb.insts[j + 1].op == Op::Jmp;
        if ((info.isBranch || info.isTerminator) && !isLast &&
            !isJccBeforeFinalJmp)
          problem("bb", bb.id, ": branch/terminator not last: ", in.str());
        if (info.isBranch && ids.count(in.label) == 0)
          problem("bb", bb.id, ": branch to unknown block bb", in.label);
      }
      bool lastInLayout = i + 1 == fn_.blocks.size();
      if (lastInLayout && bb.fallsThrough())
        problem("bb", bb.id, ": final block falls off the end of the function");
    }
  }

  void checkReg(const BasicBlock& bb, const Inst& in, Reg r, RegKind want,
                const char* role) {
    if (!r.valid()) {
      problem("bb", bb.id, ": missing ", role, " in: ", in.str());
      return;
    }
    if (r.kind != want)
      problem("bb", bb.id, ": wrong register class for ", role,
              " in: ", in.str());
    if (fn_.regAllocated) {
      if (r.isVirtual())
        problem("bb", bb.id, ": virtual register after regalloc in: ", in.str());
      int limit = r.kind == RegKind::Int ? kNumIntRegs : kNumFpRegs;
      if (r.id >= limit)
        problem("bb", bb.id, ": physical register out of range in: ", in.str());
    }
  }

  void checkInstructions() {
    for (const auto& bb : fn_.blocks) {
      for (const auto& in : bb.insts) {
        const OpInfo& info = opInfo(in.op);
        if (info.hasDst) checkReg(bb, in, in.dst, info.dstKind, "dst");
        if (info.numSrcs >= 1) checkReg(bb, in, in.src1, info.srcKind, "src1");
        if (info.numSrcs >= 2) checkReg(bb, in, in.src2, info.srcKind, "src2");
        if (info.numSrcs >= 3) checkReg(bb, in, in.src3, info.srcKind, "src3");
        if (touchesMem(in.op)) {
          checkReg(bb, in, in.mem.base, RegKind::Int, "mem base");
          if (in.mem.hasIndex())
            checkReg(bb, in, in.mem.index, RegKind::Int, "mem index");
        }
        if (in.op == Op::Ret) {
          bool wantsValue = fn_.retType != RetType::None;
          if (wantsValue && !in.src1.valid())
            problem("bb", bb.id, ": ret without value");
          if (wantsValue && in.src1.valid()) {
            RegKind want =
                fn_.retType == RetType::Int ? RegKind::Int : RegKind::Fp;
            if (in.src1.kind != want)
              problem("bb", bb.id, ": ret value register class mismatch");
          }
        }
        if ((in.op == Op::FLd || in.op == Op::FSt || in.op == Op::FStNT ||
             in.op == Op::FAddM || in.op == Op::FMulM || info.isVector) &&
            in.type == Scal::I64 && in.op != Op::VMovMsk)
          problem("bb", bb.id, ": FP/vector op with integer type: ", in.str());
      }
    }
  }

  /// Forward may-be-undefined analysis over virtual registers: a register
  /// used in block B must be defined on every path from entry to that use.
  void checkDefBeforeUse() {
    // Collect definitely-defined-at-exit per block via iterative dataflow:
    // defined_in(B) = intersect over preds(defined_out(P)); entry has params.
    struct RegSet {
      std::unordered_set<int64_t> s;
      static int64_t key(Reg r) {
        return (static_cast<int64_t>(r.kind) << 32) | static_cast<uint32_t>(r.id);
      }
      bool contains(Reg r) const { return s.count(key(r)) != 0; }
      void add(Reg r) { s.insert(key(r)); }
    };
    std::unordered_map<int32_t, RegSet> out;
    auto preds = predecessors(fn_);

    auto genOut = [&](const BasicBlock& bb, RegSet in) {
      for (const auto& i : bb.insts)
        if (opInfo(i.op).hasDst) in.add(i.dst);
      return in;
    };

    RegSet entry;
    for (const auto& p : fn_.params) entry.add(p.reg);

    // Initialize optimistically with "everything defined" represented by a
    // first full pass in layout order, then iterate to a fixed point.
    bool changed = true;
    int iterations = 0;
    std::unordered_map<int32_t, bool> visited;
    while (changed && iterations < 100) {
      changed = false;
      ++iterations;
      for (size_t i = 0; i < fn_.blocks.size(); ++i) {
        const BasicBlock& bb = fn_.blocks[i];
        RegSet in;
        bool first = true;
        if (i == 0) {
          in = entry;
          first = false;
        }
        for (int32_t p : preds[bb.id]) {
          if (!visited.count(p)) continue;  // unreached yet: ignore
          if (first) {
            in = out[p];
            first = false;
          } else {
            // intersect
            RegSet merged;
            for (int64_t k : in.s)
              if (out[p].s.count(k)) merged.s.insert(k);
            in = std::move(merged);
          }
        }
        if (first) continue;  // unreachable so far
        RegSet newOut = genOut(bb, std::move(in));
        if (!visited.count(bb.id) || newOut.s != out[bb.id].s) {
          out[bb.id] = std::move(newOut);
          visited[bb.id] = true;
          changed = true;
        }
      }
    }

    // Now scan each block with its computed "in" set.
    for (size_t i = 0; i < fn_.blocks.size(); ++i) {
      const BasicBlock& bb = fn_.blocks[i];
      if (!visited.count(bb.id)) continue;  // unreachable code: skip
      RegSet in;
      bool first = true;
      if (i == 0) {
        in = entry;
        first = false;
      }
      for (int32_t p : preds[bb.id]) {
        if (!visited.count(p)) continue;
        if (first) {
          in = out[p];
          first = false;
        } else {
          RegSet merged;
          for (int64_t k : in.s)
            if (out[p].s.count(k)) merged.s.insert(k);
          in = std::move(merged);
        }
      }
      auto use = [&](const Inst& inst, Reg r, const char* role) {
        if (r.valid() && r.isVirtual() && !in.contains(r))
          problem("bb", bb.id, ": ", role,
                  " possibly used before definition in: ", inst.str());
      };
      for (const auto& inst : bb.insts) {
        const OpInfo& info = opInfo(inst.op);
        if (info.numSrcs >= 1) use(inst, inst.src1, "src1");
        if (info.numSrcs >= 2) use(inst, inst.src2, "src2");
        if (info.numSrcs >= 3) use(inst, inst.src3, "src3");
        if (inst.op == Op::Ret) use(inst, inst.src1, "ret value");
        if (touchesMem(inst.op)) {
          use(inst, inst.mem.base, "mem base");
          if (inst.mem.hasIndex()) use(inst, inst.mem.index, "mem index");
        }
        if (info.hasDst) in.add(inst.dst);
      }
    }
  }

  const Function& fn_;
  std::vector<std::string> problems_;
};

}  // namespace

std::vector<std::string> verify(const Function& fn) {
  return Verifier(fn).run();
}

}  // namespace ifko::ir
