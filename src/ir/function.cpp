#include "ir/function.h"

#include <algorithm>

namespace ifko::ir {

int32_t Function::addBlock() {
  BasicBlock bb;
  bb.id = next_block_++;
  blocks.push_back(std::move(bb));
  return blocks.back().id;
}

int32_t Function::insertBlockAt(size_t pos) {
  assert(pos <= blocks.size());
  BasicBlock bb;
  bb.id = next_block_++;
  int32_t id = bb.id;
  blocks.insert(blocks.begin() + static_cast<ptrdiff_t>(pos), std::move(bb));
  return id;
}

BasicBlock& Function::block(int32_t id) {
  size_t pos = layoutIndex(id);
  assert(pos != static_cast<size_t>(-1) && "unknown block id");
  return blocks[pos];
}

const BasicBlock& Function::block(int32_t id) const {
  size_t pos = layoutIndex(id);
  assert(pos != static_cast<size_t>(-1) && "unknown block id");
  return blocks[pos];
}

size_t Function::layoutIndex(int32_t id) const {
  for (size_t i = 0; i < blocks.size(); ++i)
    if (blocks[i].id == id) return i;
  return static_cast<size_t>(-1);
}

void Function::removeBlock(int32_t id) {
  size_t pos = layoutIndex(id);
  assert(pos != static_cast<size_t>(-1) && "unknown block id");
  blocks.erase(blocks.begin() + static_cast<ptrdiff_t>(pos));
}

void Function::addBlockWithId(int32_t id) {
  assert(layoutIndex(id) == static_cast<size_t>(-1) && "duplicate block id");
  BasicBlock bb;
  bb.id = id;
  blocks.push_back(std::move(bb));
  next_block_ = std::max(next_block_, id + 1);
}

void Function::reserveRegs(int32_t maxIntId, int32_t maxFpId) {
  next_int_ = std::max(next_int_, maxIntId + 1);
  next_fp_ = std::max(next_fp_, maxFpId + 1);
}

const Param* Function::findParam(std::string_view pname) const {
  for (const auto& p : params)
    if (p.name == pname) return &p;
  return nullptr;
}

size_t Function::instCount() const {
  size_t n = 0;
  for (const auto& b : blocks) n += b.insts.size();
  return n;
}

}  // namespace ifko::ir
