#include "ir/builder.h"

namespace ifko::ir {

Inst& Builder::emit(Inst inst) {
  auto& insts = fn_.block(block_id_).insts;
  insts.push_back(inst);
  return insts.back();
}

Reg Builder::emitRR(Op op, Scal t, Reg a, Reg b) {
  Reg d = opInfo(op).dstKind == RegKind::Int ? fn_.newIntReg() : fn_.newFpReg();
  emit({.op = op, .type = t, .dst = d, .src1 = a, .src2 = b});
  return d;
}

Reg Builder::emitR(Op op, Scal t, Reg a) {
  Reg d = opInfo(op).dstKind == RegKind::Int ? fn_.newIntReg() : fn_.newFpReg();
  emit({.op = op, .type = t, .dst = d, .src1 = a});
  return d;
}

Reg Builder::imovi(int64_t imm) {
  Reg d = fn_.newIntReg();
  emit({.op = Op::IMovI, .dst = d, .imm = imm});
  return d;
}
Reg Builder::imov(Reg src) { return emitR(Op::IMov, Scal::I64, src); }
Reg Builder::iadd(Reg a, Reg b) { return emitRR(Op::IAdd, Scal::I64, a, b); }
Reg Builder::isub(Reg a, Reg b) { return emitRR(Op::ISub, Scal::I64, a, b); }
Reg Builder::imul(Reg a, Reg b) { return emitRR(Op::IMul, Scal::I64, a, b); }
Reg Builder::iaddi(Reg a, int64_t imm) {
  Reg d = fn_.newIntReg();
  emit({.op = Op::IAddI, .dst = d, .src1 = a, .imm = imm});
  return d;
}
void Builder::icmp(Reg a, Reg b) {
  emit({.op = Op::ICmp, .src1 = a, .src2 = b});
}
void Builder::icmpi(Reg a, int64_t imm) {
  emit({.op = Op::ICmpI, .src1 = a, .imm = imm});
}

void Builder::jmp(int32_t target) { emit({.op = Op::Jmp, .label = target}); }
void Builder::jcc(Cond cc, int32_t target) {
  emit({.op = Op::Jcc, .label = target, .cc = cc});
}
void Builder::ret() { emit({.op = Op::Ret}); }
void Builder::retVal(Reg value) { emit({.op = Op::Ret, .src1 = value}); }

Reg Builder::fldi(Scal t, double value) {
  Reg d = fn_.newFpReg();
  emit({.op = Op::FLdI, .type = t, .dst = d, .fimm = value});
  return d;
}
Reg Builder::fmov(Scal t, Reg src) { return emitR(Op::FMov, t, src); }
Reg Builder::fld(Scal t, Mem m) {
  Reg d = fn_.newFpReg();
  emit({.op = Op::FLd, .type = t, .dst = d, .mem = m});
  return d;
}
void Builder::fst(Scal t, Mem m, Reg src) {
  emit({.op = Op::FSt, .type = t, .src1 = src, .mem = m});
}
void Builder::fstnt(Scal t, Mem m, Reg src) {
  emit({.op = Op::FStNT, .type = t, .src1 = src, .mem = m});
}
Reg Builder::fadd(Scal t, Reg a, Reg b) { return emitRR(Op::FAdd, t, a, b); }
Reg Builder::fsub(Scal t, Reg a, Reg b) { return emitRR(Op::FSub, t, a, b); }
Reg Builder::fmul(Scal t, Reg a, Reg b) { return emitRR(Op::FMul, t, a, b); }
Reg Builder::fdiv(Scal t, Reg a, Reg b) { return emitRR(Op::FDiv, t, a, b); }
Reg Builder::fabs_(Scal t, Reg a) { return emitR(Op::FAbs, t, a); }
Reg Builder::fmax(Scal t, Reg a, Reg b) { return emitRR(Op::FMax, t, a, b); }
void Builder::fcmp(Scal t, Reg a, Reg b) {
  emit({.op = Op::FCmp, .type = t, .src1 = a, .src2 = b});
}

Reg Builder::vld(Scal t, Mem m) {
  Reg d = fn_.newFpReg();
  emit({.op = Op::VLd, .type = t, .dst = d, .mem = m});
  return d;
}
void Builder::vst(Scal t, Mem m, Reg src) {
  emit({.op = Op::VSt, .type = t, .src1 = src, .mem = m});
}
void Builder::vstnt(Scal t, Mem m, Reg src) {
  emit({.op = Op::VStNT, .type = t, .src1 = src, .mem = m});
}
Reg Builder::vadd(Scal t, Reg a, Reg b) { return emitRR(Op::VAdd, t, a, b); }
Reg Builder::vsub(Scal t, Reg a, Reg b) { return emitRR(Op::VSub, t, a, b); }
Reg Builder::vmul(Scal t, Reg a, Reg b) { return emitRR(Op::VMul, t, a, b); }
Reg Builder::vabs(Scal t, Reg a) { return emitR(Op::VAbs, t, a); }
Reg Builder::vmax(Scal t, Reg a, Reg b) { return emitRR(Op::VMax, t, a, b); }
Reg Builder::vbcast(Scal t, Reg scalar) { return emitR(Op::VBcast, t, scalar); }
Reg Builder::vzero(Scal t) {
  Reg d = fn_.newFpReg();
  emit({.op = Op::VZero, .type = t, .dst = d});
  return d;
}
Reg Builder::vhadd(Scal t, Reg a) { return emitR(Op::VHAdd, t, a); }
Reg Builder::vhmax(Scal t, Reg a) { return emitR(Op::VHMax, t, a); }
Reg Builder::vcmpgt(Scal t, Reg a, Reg b) { return emitRR(Op::VCmpGT, t, a, b); }
Reg Builder::vand(Scal t, Reg a, Reg b) { return emitRR(Op::VAnd, t, a, b); }
Reg Builder::vandn(Scal t, Reg a, Reg b) { return emitRR(Op::VAndN, t, a, b); }
Reg Builder::vor(Scal t, Reg a, Reg b) { return emitRR(Op::VOr, t, a, b); }
Reg Builder::vsel(Scal t, Reg mask, Reg a, Reg b) {
  Reg d = fn_.newFpReg();
  emit({.op = Op::VSel, .type = t, .dst = d, .src1 = mask, .src2 = a, .src3 = b});
  return d;
}
Reg Builder::vmovmsk(Scal t, Reg a) {
  Reg d = fn_.newIntReg();
  emit({.op = Op::VMovMsk, .type = t, .dst = d, .src1 = a});
  return d;
}
Reg Builder::viota(Scal t) {
  Reg d = fn_.newFpReg();
  emit({.op = Op::VIota, .type = t, .dst = d});
  return d;
}

void Builder::pref(PrefKind kind, Mem m) {
  emit({.op = Op::Pref, .mem = m, .pref = kind});
}

}  // namespace ifko::ir
