// Parser for the textual IR form produced by ir::print().
//
// print() and parse() round-trip: parse(print(fn)) reconstructs the
// function (blocks, instructions, parameters with mark-up, return type,
// loop mark, register-allocation state).  This is tooling glue: dumped IR
// can be edited by hand, stored as a test fixture, or piped back into the
// simulator.
#pragma once

#include <optional>
#include <string>
#include <string_view>

#include "ir/function.h"

namespace ifko::ir {

/// Parses one function.  On failure returns nullopt and, when `error` is
/// non-null, stores a message with the offending line.
[[nodiscard]] std::optional<Function> parse(std::string_view text,
                                            std::string* error = nullptr);

}  // namespace ifko::ir
