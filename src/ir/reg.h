// Registers of the virtual ISA.
//
// Two register classes exist, as on x86: integer (pointers, indices, loop
// counters) and FP/vector (xmm).  Before register allocation, ids are
// virtual and unbounded (>= kVirtBase); allocation maps them onto the
// physical files (8 integer registers, one reserved as the spill/stack
// pointer, and 8 xmm registers) exactly as constrained on the paper's
// 32-bit x86 targets.
#pragma once

#include <cstdint>
#include <functional>
#include <string>

namespace ifko::ir {

enum class RegKind : uint8_t { Int, Fp };

inline constexpr int kNumIntRegs = 8;  ///< physical integer registers
inline constexpr int kNumFpRegs = 8;   ///< physical xmm registers
/// Physical integer register reserved as the spill-area base pointer.
inline constexpr int kSpillBaseReg = kNumIntRegs - 1;
/// First virtual register id; ids below this are physical.
inline constexpr int kVirtBase = 64;

struct Reg {
  RegKind kind = RegKind::Int;
  int32_t id = -1;

  [[nodiscard]] bool valid() const { return id >= 0; }
  [[nodiscard]] bool isVirtual() const { return id >= kVirtBase; }
  [[nodiscard]] bool isPhysical() const { return id >= 0 && id < kVirtBase; }

  friend bool operator==(const Reg&, const Reg&) = default;

  [[nodiscard]] std::string str() const {
    if (!valid()) return "<none>";
    const char* prefix = kind == RegKind::Int ? "r" : "x";
    if (isVirtual())
      return std::string(1, prefix[0]) + "v" + std::to_string(id - kVirtBase);
    return std::string(prefix) + std::to_string(id);
  }

  static Reg intReg(int id) { return {RegKind::Int, id}; }
  static Reg fpReg(int id) { return {RegKind::Fp, id}; }
  static Reg none() { return {}; }
};

struct RegHash {
  size_t operator()(const Reg& r) const {
    return std::hash<int64_t>()((static_cast<int64_t>(r.kind) << 32) | static_cast<uint32_t>(r.id));
  }
};

}  // namespace ifko::ir
