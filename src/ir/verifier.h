// IR structural and dataflow verifier.
//
// Run after lowering and after every transform in debug builds (and in the
// test suite after every pipeline stage).  Returns a list of human-readable
// problems; an empty list means the function is well-formed.
#pragma once

#include <string>
#include <vector>

#include "ir/function.h"

namespace ifko::ir {

[[nodiscard]] std::vector<std::string> verify(const Function& fn);

/// Convenience: true when verify() reports nothing.
[[nodiscard]] inline bool isValid(const Function& fn) {
  return verify(fn).empty();
}

}  // namespace ifko::ir
