#include "ir/cfg.h"

namespace ifko::ir {

std::vector<int32_t> successors(const Function& fn, size_t pos) {
  std::vector<int32_t> out;
  const BasicBlock& bb = fn.blocks[pos];
  if (bb.insts.empty()) {
    if (pos + 1 < fn.blocks.size()) out.push_back(fn.blocks[pos + 1].id);
    return out;
  }
  const Inst& last = bb.insts.back();
  if (last.op == Op::Ret) return out;
  if (last.op == Op::Jmp) {
    // [jcc, jmp] ending: both targets are successors.
    if (bb.insts.size() >= 2 && bb.insts[bb.insts.size() - 2].op == Op::Jcc)
      out.push_back(bb.insts[bb.insts.size() - 2].label);
    out.push_back(last.label);
    return out;
  }
  if (last.op == Op::Jcc) out.push_back(last.label);
  if (pos + 1 < fn.blocks.size()) out.push_back(fn.blocks[pos + 1].id);
  return out;
}

std::unordered_map<int32_t, std::vector<int32_t>> predecessors(
    const Function& fn) {
  std::unordered_map<int32_t, std::vector<int32_t>> preds;
  for (const auto& bb : fn.blocks) preds[bb.id];  // ensure all keys exist
  for (size_t i = 0; i < fn.blocks.size(); ++i)
    for (int32_t succ : successors(fn, i)) preds[succ].push_back(fn.blocks[i].id);
  return preds;
}

}  // namespace ifko::ir
