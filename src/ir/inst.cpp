#include "ir/inst.h"

#include <array>
#include <cassert>
#include <iomanip>
#include <sstream>

namespace ifko::ir {

Cond negate(Cond c) {
  switch (c) {
    case Cond::EQ: return Cond::NE;
    case Cond::NE: return Cond::EQ;
    case Cond::LT: return Cond::GE;
    case Cond::LE: return Cond::GT;
    case Cond::GT: return Cond::LE;
    case Cond::GE: return Cond::LT;
  }
  return Cond::EQ;
}

std::string_view condName(Cond c) {
  switch (c) {
    case Cond::EQ: return "eq";
    case Cond::NE: return "ne";
    case Cond::LT: return "lt";
    case Cond::LE: return "le";
    case Cond::GT: return "gt";
    case Cond::GE: return "ge";
  }
  return "?";
}

std::string_view prefName(PrefKind p) {
  switch (p) {
    case PrefKind::NTA: return "nta";
    case PrefKind::T0: return "t0";
    case PrefKind::T1: return "t1";
    case PrefKind::W: return "w";
  }
  return "?";
}

namespace {

struct OpInfoInit {
  Op op;
  OpInfo info;
};

constexpr RegKind I = RegKind::Int;
constexpr RegKind F = RegKind::Fp;

// clang-format off
const OpInfoInit kOpTable[] = {
  {Op::IMovI,  {.name="imovi",  .numSrcs=0, .hasDst=true,  .hasImm=true,  .dstKind=I, .srcKind=I}},
  {Op::IMov,   {.name="imov",   .numSrcs=1, .hasDst=true,  .dstKind=I, .srcKind=I}},
  {Op::IAdd,   {.name="iadd",   .numSrcs=2, .hasDst=true,  .dstKind=I, .srcKind=I}},
  {Op::ISub,   {.name="isub",   .numSrcs=2, .hasDst=true,  .dstKind=I, .srcKind=I}},
  {Op::IMul,   {.name="imul",   .numSrcs=2, .hasDst=true,  .dstKind=I, .srcKind=I}},
  {Op::IAddI,  {.name="iaddi",  .numSrcs=1, .hasDst=true,  .hasImm=true, .dstKind=I, .srcKind=I}},
  {Op::IShlI,  {.name="ishli",  .numSrcs=1, .hasDst=true,  .hasImm=true, .dstKind=I, .srcKind=I}},
  {Op::IAddCC, {.name="iaddcc", .numSrcs=1, .hasDst=true,  .hasImm=true, .setsFlags=true, .dstKind=I, .srcKind=I}},
  {Op::ICmp,   {.name="icmp",   .numSrcs=2, .setsFlags=true, .srcKind=I}},
  {Op::ICmpI,  {.name="icmpi",  .numSrcs=1, .hasImm=true,  .setsFlags=true, .srcKind=I}},
  {Op::ILd,    {.name="ild",    .numSrcs=0, .hasDst=true,  .readsMem=true, .dstKind=I, .srcKind=I}},
  {Op::ISt,    {.name="ist",    .numSrcs=1, .writesMem=true, .srcKind=I}},
  {Op::Jmp,    {.name="jmp",    .isBranch=true, .isTerminator=true}},
  {Op::Jcc,    {.name="jcc",    .isBranch=true, .readsFlags=true}},
  {Op::Ret,    {.name="ret",    .numSrcs=0, .isTerminator=true}},
  {Op::FLdI,   {.name="fldi",   .numSrcs=0, .hasDst=true,  .hasFImm=true, .dstKind=F, .srcKind=F}},
  {Op::FMov,   {.name="fmov",   .numSrcs=1, .hasDst=true,  .dstKind=F, .srcKind=F}},
  {Op::FLd,    {.name="fld",    .numSrcs=0, .hasDst=true,  .readsMem=true, .dstKind=F, .srcKind=F}},
  {Op::FSt,    {.name="fst",    .numSrcs=1, .writesMem=true, .srcKind=F}},
  {Op::FStNT,  {.name="fstnt",  .numSrcs=1, .writesMem=true, .srcKind=F}},
  {Op::FAdd,   {.name="fadd",   .numSrcs=2, .hasDst=true,  .dstKind=F, .srcKind=F}},
  {Op::FSub,   {.name="fsub",   .numSrcs=2, .hasDst=true,  .dstKind=F, .srcKind=F}},
  {Op::FMul,   {.name="fmul",   .numSrcs=2, .hasDst=true,  .dstKind=F, .srcKind=F}},
  {Op::FDiv,   {.name="fdiv",   .numSrcs=2, .hasDst=true,  .dstKind=F, .srcKind=F}},
  {Op::FAbs,   {.name="fabs",   .numSrcs=1, .hasDst=true,  .dstKind=F, .srcKind=F}},
  {Op::FNeg,   {.name="fneg",   .numSrcs=1, .hasDst=true,  .dstKind=F, .srcKind=F}},
  {Op::FMax,   {.name="fmax",   .numSrcs=2, .hasDst=true,  .dstKind=F, .srcKind=F}},
  {Op::FAddM,  {.name="faddm",  .numSrcs=1, .hasDst=true,  .readsMem=true, .dstKind=F, .srcKind=F}},
  {Op::FMulM,  {.name="fmulm",  .numSrcs=1, .hasDst=true,  .readsMem=true, .dstKind=F, .srcKind=F}},
  {Op::FCmp,   {.name="fcmp",   .numSrcs=2, .setsFlags=true, .srcKind=F}},
  {Op::VLd,    {.name="vld",    .numSrcs=0, .hasDst=true,  .readsMem=true, .isVector=true, .dstKind=F, .srcKind=F}},
  {Op::VSt,    {.name="vst",    .numSrcs=1, .writesMem=true, .isVector=true, .srcKind=F}},
  {Op::VStNT,  {.name="vstnt",  .numSrcs=1, .writesMem=true, .isVector=true, .srcKind=F}},
  {Op::VMov,   {.name="vmov",   .numSrcs=1, .hasDst=true,  .isVector=true, .dstKind=F, .srcKind=F}},
  {Op::VAdd,   {.name="vadd",   .numSrcs=2, .hasDst=true,  .isVector=true, .dstKind=F, .srcKind=F}},
  {Op::VSub,   {.name="vsub",   .numSrcs=2, .hasDst=true,  .isVector=true, .dstKind=F, .srcKind=F}},
  {Op::VMul,   {.name="vmul",   .numSrcs=2, .hasDst=true,  .isVector=true, .dstKind=F, .srcKind=F}},
  {Op::VAbs,   {.name="vabs",   .numSrcs=1, .hasDst=true,  .isVector=true, .dstKind=F, .srcKind=F}},
  {Op::VMax,   {.name="vmax",   .numSrcs=2, .hasDst=true,  .isVector=true, .dstKind=F, .srcKind=F}},
  {Op::VBcast, {.name="vbcast", .numSrcs=1, .hasDst=true,  .isVector=true, .dstKind=F, .srcKind=F}},
  {Op::VZero,  {.name="vzero",  .numSrcs=0, .hasDst=true,  .isVector=true, .dstKind=F, .srcKind=F}},
  {Op::VHAdd,  {.name="vhadd",  .numSrcs=1, .hasDst=true,  .isVector=true, .dstKind=F, .srcKind=F}},
  {Op::VHMax,  {.name="vhmax",  .numSrcs=1, .hasDst=true,  .isVector=true, .dstKind=F, .srcKind=F}},
  {Op::VCmpGT, {.name="vcmpgt", .numSrcs=2, .hasDst=true,  .isVector=true, .dstKind=F, .srcKind=F}},
  {Op::VAnd,   {.name="vand",   .numSrcs=2, .hasDst=true,  .isVector=true, .dstKind=F, .srcKind=F}},
  {Op::VAndN,  {.name="vandn",  .numSrcs=2, .hasDst=true,  .isVector=true, .dstKind=F, .srcKind=F}},
  {Op::VOr,    {.name="vor",    .numSrcs=2, .hasDst=true,  .isVector=true, .dstKind=F, .srcKind=F}},
  {Op::VSel,   {.name="vsel",   .numSrcs=3, .hasDst=true,  .isVector=true, .dstKind=F, .srcKind=F}},
  {Op::VMovMsk,{.name="vmovmsk",.numSrcs=1, .hasDst=true,  .isVector=true, .dstKind=I, .srcKind=F}},
  {Op::VIota,  {.name="viota",  .numSrcs=0, .hasDst=true,  .isVector=true, .dstKind=F, .srcKind=F}},
  {Op::VExt,   {.name="vext",   .numSrcs=1, .hasDst=true,  .hasImm=true, .isVector=true, .dstKind=F, .srcKind=F}},
  {Op::FToI,   {.name="ftoi",   .numSrcs=1, .hasDst=true,  .dstKind=I, .srcKind=F}},
  {Op::VAddM,  {.name="vaddm",  .numSrcs=1, .hasDst=true,  .readsMem=true, .isVector=true, .dstKind=F, .srcKind=F}},
  {Op::VMulM,  {.name="vmulm",  .numSrcs=1, .hasDst=true,  .readsMem=true, .isVector=true, .dstKind=F, .srcKind=F}},
  {Op::Pref,   {.name="pref",   .numSrcs=0}},
  {Op::Touch,  {.name="touch",  .numSrcs=0, .readsMem=true}},
  {Op::Nop,    {.name="nop"}},
};
// clang-format on

constexpr size_t kNumOps = static_cast<size_t>(Op::Nop) + 1;

std::array<OpInfo, kNumOps> buildTable() {
  std::array<OpInfo, kNumOps> table{};
  for (const auto& e : kOpTable) table[static_cast<size_t>(e.op)] = e.info;
  return table;
}

const std::array<OpInfo, kNumOps> kInfo = buildTable();

}  // namespace

const OpInfo& opInfo(Op op) { return kInfo[static_cast<size_t>(op)]; }

bool touchesMem(Op op) {
  const OpInfo& info = opInfo(op);
  return info.readsMem || info.writesMem || op == Op::Pref;
}

std::string Mem::str() const {
  std::ostringstream os;
  os << "[" << base.str();
  if (hasIndex()) os << " + " << index.str() << "*" << scale;
  if (disp != 0) os << (disp > 0 ? " + " : " - ") << (disp > 0 ? disp : -disp);
  os << "]";
  return os.str();
}

std::string Inst::str() const {
  const OpInfo& info = opInfo(op);
  std::ostringstream os;
  os << info.name;
  if (op == Op::Jcc) os << "." << condName(cc);
  if (op == Op::Pref) os << "." << prefName(pref);
  if (op != Op::Jmp && op != Op::Jcc && op != Op::Nop &&
      (info.numSrcs > 0 || info.hasDst || touchesMem(op) || info.hasImm ||
       info.hasFImm || op == Op::Ret)) {
    // FP/vector ops carry the element type; integer ops do not print it.
    if (info.srcKind == RegKind::Fp || info.dstKind == RegKind::Fp)
      os << "." << scalName(type);
  }
  bool first = true;
  auto sep = [&]() -> std::ostringstream& {
    os << (first ? " " : ", ");
    first = false;
    return os;
  };
  if (info.hasDst) sep() << dst.str();
  if (info.numSrcs >= 1 && src1.valid()) sep() << src1.str();
  if (info.numSrcs >= 2 && src2.valid()) sep() << src2.str();
  if (info.numSrcs >= 3 && src3.valid()) sep() << src3.str();
  if (op == Op::Ret && src1.valid()) sep() << src1.str();
  if (touchesMem(op)) sep() << mem.str();
  if (info.hasImm) sep() << imm;
  if (info.hasFImm) sep() << std::setprecision(17) << fimm;
  if (info.isBranch) sep() << "bb" << label;
  return os.str();
}

}  // namespace ifko::ir
