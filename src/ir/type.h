// Value types of the virtual ISA.
//
// The ISA is x86-flavoured: 64-bit integer registers for pointers and
// indices, and a single 16-byte FP register file (xmm-style) used both for
// scalar F32/F64 values (lane 0) and for SIMD vectors (4xF32 or 2xF64),
// mirroring SSE/SSE2 as used by the paper's FKO backend.
#pragma once

#include <cassert>
#include <cstdint>
#include <string_view>

namespace ifko::ir {

enum class Scal : uint8_t { F32, F64, I64 };

/// Width of a SIMD register in bytes (SSE).
inline constexpr int kVecBytes = 16;

[[nodiscard]] constexpr int scalBytes(Scal t) {
  switch (t) {
    case Scal::F32: return 4;
    case Scal::F64: return 8;
    case Scal::I64: return 8;
  }
  return 0;
}

/// Number of SIMD lanes for an FP element type (4 for single, 2 for double),
/// matching the paper's "vector length" in Section 2.2.3.
[[nodiscard]] constexpr int vecLanes(Scal t) {
  assert(t != Scal::I64);
  return kVecBytes / scalBytes(t);
}

[[nodiscard]] constexpr std::string_view scalName(Scal t) {
  switch (t) {
    case Scal::F32: return "f32";
    case Scal::F64: return "f64";
    case Scal::I64: return "i64";
  }
  return "?";
}

}  // namespace ifko::ir
