// Textual dump of IR functions, used in tests and for --dump-ir style
// debugging of the compile pipeline.
#pragma once

#include <string>

#include "ir/function.h"

namespace ifko::ir {

[[nodiscard]] std::string print(const Function& fn);

}  // namespace ifko::ir
