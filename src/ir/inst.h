// Instructions of the virtual ISA.
//
// The opcode set is the subset of x86/SSE that FKO's transformations target
// in the paper: scalar and packed FP arithmetic, loads/stores with full
// base+index*scale+disp addressing, memory-operand ALU forms (the CISC
// "load-op" peephole target), the SSE/3DNow! prefetch family, non-temporal
// stores, and simple integer/branch support for loop control.
#pragma once

#include <cstdint>
#include <string>

#include "ir/reg.h"
#include "ir/type.h"

namespace ifko::ir {

enum class Op : uint8_t {
  // --- integer ---
  IMovI,   ///< dst <- imm
  IMov,    ///< dst <- src1
  IAdd,    ///< dst <- src1 + src2
  ISub,    ///< dst <- src1 - src2
  IMul,    ///< dst <- src1 * src2
  IAddI,   ///< dst <- src1 + imm
  IShlI,   ///< dst <- src1 << imm
  IAddCC,  ///< dst <- src1 + imm, setting flags (x86 add/sub set EFLAGS);
           ///< used by optimized loop control to fuse update+compare
  ICmp,    ///< flags <- compare(src1, src2)
  ICmpI,   ///< flags <- compare(src1, imm)
  ILd,     ///< dst <- mem (64-bit); used for integer spill reloads
  ISt,     ///< mem <- src1 (64-bit); used for integer spills
  // --- control ---
  Jmp,  ///< unconditional jump to block `label`
  Jcc,  ///< conditional jump on flags to `label`; falls through otherwise
  Ret,  ///< return src1 (type per Function::retType) or nothing
  // --- scalar FP (lane 0 of an xmm register) ---
  FLdI,   ///< dst <- fimm (materialized constant)
  FMov,   ///< dst <- src1
  FLd,    ///< dst <- mem
  FSt,    ///< mem <- src1
  FStNT,  ///< mem <- src1, non-temporal hint (movnti-style scalar form)
  FAdd, FSub, FMul, FDiv,
  FAbs,   ///< dst <- |src1|
  FNeg,   ///< dst <- -src1
  FMax,   ///< dst <- max(src1, src2)
  FAddM,  ///< dst <- src1 + mem   (x86 memory-operand form)
  FMulM,  ///< dst <- src1 * mem
  FCmp,   ///< flags <- compare(src1, src2)
  // --- packed FP (full xmm register; lane count from `type`) ---
  VLd, VSt, VStNT,
  VMov,
  VAdd, VSub, VMul,
  VAbs,
  VMax,
  VBcast,   ///< dst lanes <- src1 lane 0
  VZero,    ///< dst <- 0 (xorps idiom)
  VHAdd,    ///< dst lane0 <- sum of src1 lanes (reduction epilogue)
  VHMax,    ///< dst lane0 <- max of src1 lanes
  VCmpGT,   ///< dst <- lanewise mask (src1 > src2 ? ~0 : 0)
  VAnd, VAndN, VOr,
  VSel,     ///< dst <- (src2 & src1) | (src3 & ~src1); src1 is the mask
  VMovMsk,  ///< int dst <- sign-bit mask of src1 lanes (movmskps)
  VIota,    ///< dst lanes <- {0,1,..}; stands for a .rodata constant load
  VExt,     ///< dst lane0 <- src1 lane `imm` (pshufd/movhlps-style extract)
  FToI,     ///< int dst <- truncate(src1 lane 0) (cvttss2si/cvttsd2si)
  VAddM, VMulM,
  // --- memory hints ---
  Pref,   ///< prefetch `mem` with hint `pref`
  Touch,  ///< demand-load `mem` and discard it (block fetch [Wall 2001]:
          ///< unlike Pref, it is never dropped by a busy bus)
  Nop,
};

/// Prefetch instruction flavours (paper Section 3.3 / Table 3).
enum class PrefKind : uint8_t {
  NTA,  ///< prefetchnta: nearest cache level, non-temporal
  T0,   ///< prefetcht0: all cache levels
  T1,   ///< prefetcht1: L2 and below
  W,    ///< 3DNow! prefetchw: fetch with intent to modify (AMD only)
};

enum class Cond : uint8_t { EQ, NE, LT, LE, GT, GE };

[[nodiscard]] Cond negate(Cond c);
[[nodiscard]] std::string_view condName(Cond c);
[[nodiscard]] std::string_view prefName(PrefKind p);

/// x86-style memory operand: [base + index*scale + disp].
struct Mem {
  Reg base;
  Reg index;  ///< invalid() when absent
  int32_t scale = 1;
  int64_t disp = 0;

  [[nodiscard]] bool hasIndex() const { return index.valid(); }
  [[nodiscard]] std::string str() const;
  friend bool operator==(const Mem&, const Mem&) = default;
};

struct Inst {
  Op op = Op::Nop;
  Scal type = Scal::I64;  ///< element type for FP/vector ops
  Reg dst;
  Reg src1, src2, src3;
  Mem mem;
  int64_t imm = 0;
  double fimm = 0.0;
  int32_t label = -1;  ///< branch target block id
  Cond cc = Cond::EQ;
  PrefKind pref = PrefKind::NTA;

  [[nodiscard]] std::string str() const;
};

/// Static per-opcode facts used by the verifier, printer, and dataflow.
struct OpInfo {
  std::string_view name;
  uint8_t numSrcs = 0;      ///< register sources actually read (src1..srcN)
  bool hasDst = false;
  bool readsMem = false;    ///< uses `mem` as a load source
  bool writesMem = false;   ///< uses `mem` as a store target
  bool hasImm = false;
  bool hasFImm = false;
  bool isBranch = false;
  bool isTerminator = false;  ///< Jmp/Ret end a block; Jcc may fall through
  bool setsFlags = false;
  bool readsFlags = false;
  bool isVector = false;      ///< operates on the full xmm width
  RegKind dstKind = RegKind::Int;
  RegKind srcKind = RegKind::Int;  ///< kind of src1..srcN (VMovMsk overrides)
};

[[nodiscard]] const OpInfo& opInfo(Op op);

/// True for ops whose `mem` field addresses memory at all (incl. Pref).
[[nodiscard]] bool touchesMem(Op op);

}  // namespace ifko::ir
