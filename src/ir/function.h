// Function, basic block, and loop mark-up containers.
//
// A Function is a layout-ordered list of basic blocks, mirroring emitted
// machine code: a block ends with an explicit terminator (jmp/ret), with a
// conditional branch followed by fall-through, or by falling through to the
// next block in layout order.  Branch labels refer to stable block ids, not
// layout positions, so transforms may insert and delete blocks freely.
#pragma once

#include <cassert>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "ir/inst.h"
#include "ir/reg.h"
#include "ir/type.h"

namespace ifko::ir {

/// Kind of a kernel parameter.  Pointers and the trip count live in integer
/// registers; FP scalars (e.g. axpy's alpha) live in xmm registers, matching
/// how the ATLAS kernel timers hand arguments to the kernels.
enum class ParamKind : uint8_t { PtrF32, PtrF64, ScalF32, ScalF64, Int };

struct Param {
  std::string name;
  ParamKind kind;
  Reg reg;  ///< virtual register the parameter is bound to on entry
  // Mark-up carried down from HIL for vector parameters.
  bool vecRead = false;     ///< intent in/inout
  bool vecWritten = false;  ///< intent out/inout
  bool noPrefetch = false;  ///< user hint: operand already in cache

  [[nodiscard]] bool isPointer() const {
    return kind == ParamKind::PtrF32 || kind == ParamKind::PtrF64;
  }
  [[nodiscard]] Scal elemType() const {
    assert(isPointer() || kind == ParamKind::ScalF32 || kind == ParamKind::ScalF64);
    return (kind == ParamKind::PtrF32 || kind == ParamKind::ScalF32) ? Scal::F32
                                                                     : Scal::F64;
  }
};

struct BasicBlock {
  int32_t id = -1;
  std::vector<Inst> insts;

  /// Terminator if the block ends in Jmp or Ret; nullptr when it falls
  /// through (possibly after a trailing Jcc).
  [[nodiscard]] const Inst* hardTerminator() const {
    if (insts.empty()) return nullptr;
    const Inst& last = insts.back();
    return opInfo(last.op).isTerminator ? &last : nullptr;
  }
  [[nodiscard]] bool fallsThrough() const { return hardTerminator() == nullptr; }
};

enum class RetType : uint8_t { None, Int, F32, F64 };

enum class LoopDir : uint8_t { Up, Down };

/// The loop flagged for iterative tuning (paper: "we require that a loop be
/// flagged as important before it is empirically tuned").  Lowering fills
/// this in; the induction-normalization pass canonicalizes the fields the
/// fundamental transforms rely on.
struct LoopMark {
  bool valid = false;
  int32_t preheader = -1;  ///< block executed once before the loop
  int32_t header = -1;     ///< first body block (branch target of the latch)
  int32_t latch = -1;      ///< block with induction updates and the backedge
  int32_t exit = -1;       ///< first block after the loop
  Reg ivar;                ///< loop counter register
  LoopDir dir = LoopDir::Up;
  Reg bound;               ///< trip-count register (N); loop runs N iterations
  /// All body block ids (header..latch inclusive), in layout order.
  std::vector<int32_t> bodyBlocks;

  [[nodiscard]] bool contains(int32_t blockId) const {
    for (int32_t b : bodyBlocks)
      if (b == blockId) return true;
    return false;
  }
};

class Function {
 public:
  std::string name;
  std::vector<Param> params;
  RetType retType = RetType::None;
  std::vector<BasicBlock> blocks;  ///< layout order
  LoopMark loop;
  /// True once register allocation has mapped virtual registers to physical
  /// ones; the interpreter then provides the spill area via the reserved
  /// base register.
  bool regAllocated = false;
  int32_t numSpillSlots = 0;

  // -- virtual register creation -------------------------------------------
  [[nodiscard]] Reg newIntReg() { return Reg::intReg(next_int_++); }
  [[nodiscard]] Reg newFpReg() { return Reg::fpReg(next_fp_++); }
  [[nodiscard]] int32_t maxIntReg() const { return next_int_; }
  [[nodiscard]] int32_t maxFpReg() const { return next_fp_; }

  // -- block management ------------------------------------------------------
  /// Appends an empty block at the end of the layout and returns its id.
  int32_t addBlock();
  /// Inserts an empty block at layout position `pos` and returns its id.
  int32_t insertBlockAt(size_t pos);
  /// Appends an empty block with a caller-chosen id (the IR text parser
  /// reconstructs dumped functions).  The id must not already exist.
  void addBlockWithId(int32_t id);
  /// Ensures future newIntReg()/newFpReg() ids exceed the given ids
  /// (used when reconstructing functions from text).
  void reserveRegs(int32_t maxIntId, int32_t maxFpId);
  [[nodiscard]] BasicBlock& block(int32_t id);
  [[nodiscard]] const BasicBlock& block(int32_t id) const;
  /// Layout position of block `id`, or npos when absent.
  [[nodiscard]] size_t layoutIndex(int32_t id) const;
  void removeBlock(int32_t id);

  [[nodiscard]] const Param* findParam(std::string_view pname) const;
  /// Total instruction count over all blocks (handy for tests).
  [[nodiscard]] size_t instCount() const;

 private:
  int32_t next_int_ = kVirtBase;
  int32_t next_fp_ = kVirtBase;
  int32_t next_block_ = 0;
};

}  // namespace ifko::ir
