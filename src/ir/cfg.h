// Control-flow graph queries over the layout-ordered block list.
#pragma once

#include <unordered_map>
#include <vector>

#include "ir/function.h"

namespace ifko::ir {

/// Successor block ids of the block at layout position `pos`: the Jcc target
/// (if any), then the Jmp target or fall-through block.  Ret blocks have no
/// successors.
[[nodiscard]] std::vector<int32_t> successors(const Function& fn, size_t pos);

/// Map block id -> predecessor block ids.
[[nodiscard]] std::unordered_map<int32_t, std::vector<int32_t>> predecessors(
    const Function& fn);

}  // namespace ifko::ir
