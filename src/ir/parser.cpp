#include "ir/parser.h"

#include <cstdlib>
#include <map>
#include <sstream>
#include <vector>

#include "support/str.h"

namespace ifko::ir {

namespace {

const std::map<std::string, Op>& opByName() {
  static const std::map<std::string, Op> kMap = [] {
    std::map<std::string, Op> m;
    for (int i = 0; i <= static_cast<int>(Op::Nop); ++i) {
      Op op = static_cast<Op>(i);
      m.emplace(std::string(opInfo(op).name), op);
    }
    return m;
  }();
  return kMap;
}

/// Strict decimal parse for the grammar's integer fields (block ids,
/// scales, displacements, immediates, spill counts): the whole token must
/// be a number — malformed IR fails loudly instead of atoi'ing to 0.
bool parseIntField(std::string_view t, int64_t* out) {
  return ifko::parseInt64(t, out);
}

class Parser {
 public:
  Parser(std::string_view text, std::string* error)
      : error_(error) {
    for (const auto& line : split(text, '\n'))
      if (!trim(line).empty()) lines_.emplace_back(line);
  }

  std::optional<Function> run() {
    if (lines_.empty()) return fail(0, "empty input");
    if (!parseHeader(lines_[0])) return std::nullopt;
    size_t i = 1;
    if (i < lines_.size() &&
        startsWith(trim(lines_[i]), "; tuned loop:")) {
      if (!parseLoopMark(lines_[i])) return std::nullopt;
      ++i;
    }
    int32_t curBlock = -1;
    for (; i < lines_.size(); ++i) {
      std::string_view line = trim(lines_[i]);
      if (startsWith(line, "bb") && line.back() == ':') {
        int64_t id = 0;
        if (!parseIntField(line.substr(2, line.size() - 3), &id) || id < 0)
          return fail(i, "bad block label '" + std::string(line) + "'");
        fn_.addBlockWithId(static_cast<int32_t>(id));
        curBlock = static_cast<int32_t>(id);
        continue;
      }
      if (curBlock < 0) return fail(i, "instruction before any block label");
      auto inst = parseInst(line, i);
      if (!inst) return std::nullopt;
      fn_.block(curBlock).insts.push_back(*inst);
    }
    fn_.reserveRegs(max_int_, max_fp_);
    return std::move(fn_);
  }

 private:
  std::optional<Function> fail(size_t line, const std::string& msg) {
    if (error_ != nullptr) {
      std::ostringstream os;
      os << "line " << (line + 1) << ": " << msg;
      *error_ = os.str();
    }
    return std::nullopt;
  }
  std::optional<Inst> failInst(size_t line, const std::string& msg) {
    (void)fail(line, msg);
    return std::nullopt;
  }

  std::optional<Reg> parseReg(std::string_view t) {
    bool fp = false;
    size_t pos = 0;
    if (t.empty()) return std::nullopt;
    if (t[0] == 'x') fp = true;
    else if (t[0] != 'r') return std::nullopt;
    ++pos;
    bool virt = pos < t.size() && t[pos] == 'v';
    if (virt) ++pos;
    if (pos >= t.size()) return std::nullopt;
    char* end = nullptr;
    std::string digits(t.substr(pos));
    long id = std::strtol(digits.c_str(), &end, 10);
    if (end == digits.c_str() || *end != '\0') return std::nullopt;
    Reg r{fp ? RegKind::Fp : RegKind::Int,
          static_cast<int32_t>(virt ? kVirtBase + id : id)};
    auto& maxRef = fp ? max_fp_ : max_int_;
    maxRef = std::max(maxRef, r.id);
    return r;
  }

  bool parseHeader(std::string_view line) {
    // func NAME(params) [-> ret] [[regalloc, spills=K]]
    line = trim(line);
    if (!startsWith(line, "func ")) { (void)fail(0, "expected 'func'"); return false; }
    line.remove_prefix(5);
    size_t open = line.find('(');
    size_t close = line.rfind(')');
    if (open == std::string_view::npos || close == std::string_view::npos ||
        close < open) {
      (void)fail(0, "malformed parameter list");
      return false;
    }
    fn_.name = std::string(trim(line.substr(0, open)));
    std::string_view paramsText = line.substr(open + 1, close - open - 1);
    std::string_view tail = trim(line.substr(close + 1));

    if (!paramsText.empty()) {
      for (const auto& piece : split(paramsText, ',')) {
        std::string_view ps = trim(piece);
        // KIND NAME[{rwn}]=REG
        size_t sp = ps.find(' ');
        size_t eq = ps.rfind('=');
        if (sp == std::string_view::npos || eq == std::string_view::npos) {
          (void)fail(0, "malformed parameter '" + std::string(ps) + "'");
          return false;
        }
        std::string kind(ps.substr(0, sp));
        std::string_view nameAndMark = trim(ps.substr(sp + 1, eq - sp - 1));
        Param p;
        size_t brace = nameAndMark.find('{');
        if (brace != std::string_view::npos) {
          p.name = std::string(nameAndMark.substr(0, brace));
          std::string_view marks = nameAndMark.substr(brace + 1);
          p.vecRead = marks.find('r') != std::string_view::npos;
          p.vecWritten = marks.find('w') != std::string_view::npos;
          p.noPrefetch = marks.find('n') != std::string_view::npos;
        } else {
          p.name = std::string(nameAndMark);
        }
        if (kind == "f32*") p.kind = ParamKind::PtrF32;
        else if (kind == "f64*") p.kind = ParamKind::PtrF64;
        else if (kind == "f32") p.kind = ParamKind::ScalF32;
        else if (kind == "f64") p.kind = ParamKind::ScalF64;
        else if (kind == "int") p.kind = ParamKind::Int;
        else { (void)fail(0, "unknown parameter kind '" + kind + "'"); return false; }
        auto reg = parseReg(trim(ps.substr(eq + 1)));
        if (!reg) { (void)fail(0, "bad parameter register"); return false; }
        p.reg = *reg;
        fn_.params.push_back(std::move(p));
      }
    }

    if (startsWith(tail, "-> ")) {
      std::string_view rt = tail.substr(3);
      if (startsWith(rt, "int")) fn_.retType = RetType::Int;
      else if (startsWith(rt, "f32")) fn_.retType = RetType::F32;
      else if (startsWith(rt, "f64")) fn_.retType = RetType::F64;
      size_t sp = tail.find(' ', 3);
      tail = sp == std::string_view::npos ? "" : trim(tail.substr(sp));
    }
    if (startsWith(tail, "[regalloc")) {
      fn_.regAllocated = true;
      size_t eq = tail.find("spills=");
      if (eq != std::string_view::npos) {
        std::string_view count = tail.substr(eq + 7);
        if (size_t close = count.find(']'); close != std::string_view::npos)
          count = count.substr(0, close);
        int64_t spills = 0;
        if (!parseIntField(count, &spills) || spills < 0) {
          (void)fail(0, "bad spill count '" + std::string(count) + "'");
          return false;
        }
        fn_.numSpillSlots = static_cast<int32_t>(spills);
      }
    }
    return true;
  }

  bool parseLoopMark(std::string_view line) {
    fn_.loop.valid = true;
    auto field = [&](const char* key) -> std::string {
      // Keys are space-delimited ("header=" must not match "preheader=").
      std::string k = " " + std::string(key) + "=";
      size_t at = line.find(k);
      if (at == std::string_view::npos) return "";
      size_t start = at + k.size();
      size_t end = line.find(' ', start);
      return std::string(line.substr(start, end - start));
    };
    bool badBlock = false;
    auto bb = [&](const char* key) -> int32_t {
      std::string v = field(key);
      if (!startsWith(v, "bb")) return -1;  // absent field: no loop block
      int64_t id = 0;
      if (!parseIntField(std::string_view(v).substr(2), &id) || id < 0) {
        (void)fail(1, "bad loop-mark block '" + v + "'");
        badBlock = true;
        return -1;
      }
      return static_cast<int32_t>(id);
    };
    fn_.loop.preheader = bb("preheader");
    fn_.loop.header = bb("header");
    fn_.loop.latch = bb("latch");
    fn_.loop.exit = bb("exit");
    if (badBlock) return false;
    if (auto r = parseReg(field("ivar"))) fn_.loop.ivar = *r;
    if (auto r = parseReg(field("N"))) fn_.loop.bound = *r;
    fn_.loop.dir = line.find(" down") != std::string_view::npos ? LoopDir::Down
                                                                : LoopDir::Up;
    return true;
  }

  std::optional<Mem> parseMem(std::string_view t, size_t lineNo) {
    // [base + index*scale + disp] (printer emits "- disp" for negatives)
    if (t.size() < 2 || t.front() != '[' || t.back() != ']') {
      (void)failInst(lineNo, "malformed memory operand '" + std::string(t) + "'");
      return std::nullopt;
    }
    Mem m;
    std::string inner(t.substr(1, t.size() - 2));
    // Tokenize on spaces; terms are joined by '+'/'-'.
    std::vector<std::string> toks;
    for (const auto& piece : split(inner, ' '))
      if (!piece.empty()) toks.push_back(piece);
    if (toks.empty()) return std::nullopt;
    auto base = parseReg(toks[0]);
    if (!base) return std::nullopt;
    m.base = *base;
    size_t i = 1;
    while (i < toks.size()) {
      if (i + 1 >= toks.size()) return std::nullopt;  // dangling sign
      std::string sign = toks[i];
      std::string term = toks[i + 1];
      i += 2;
      size_t star = term.find('*');
      if (star != std::string::npos) {
        auto idx = parseReg(term.substr(0, star));
        if (!idx) return std::nullopt;
        m.index = *idx;
        int64_t scale = 0;
        if (!parseIntField(std::string_view(term).substr(star + 1), &scale)) {
          (void)failInst(lineNo, "bad scale in '" + std::string(t) + "'");
          return std::nullopt;
        }
        m.scale = static_cast<int32_t>(scale);
      } else {
        int64_t v = 0;
        if (!parseIntField(term, &v)) {
          (void)failInst(lineNo,
                         "bad displacement in '" + std::string(t) + "'");
          return std::nullopt;
        }
        m.disp = sign == "-" ? -v : v;
      }
    }
    return m;
  }

  std::optional<Inst> parseInst(std::string_view line, size_t lineNo) {
    // Mnemonic (with .suffixes), then comma-separated operands.
    size_t sp = line.find(' ');
    std::string mnemonic(line.substr(0, sp));
    std::string_view rest = sp == std::string_view::npos ? "" : trim(line.substr(sp));

    Inst in;
    auto dots = split(mnemonic, '.');
    auto it = opByName().find(dots[0]);
    if (it == opByName().end())
      return failInst(lineNo, "unknown opcode '" + dots[0] + "'");
    in.op = it->second;
    for (size_t d = 1; d < dots.size(); ++d) {
      const std::string& s = dots[d];
      if (s == "f32") in.type = Scal::F32;
      else if (s == "f64") in.type = Scal::F64;
      else if (s == "i64") in.type = Scal::I64;
      else if (s == "eq") in.cc = Cond::EQ;
      else if (s == "ne") in.cc = Cond::NE;
      else if (s == "lt") in.cc = Cond::LT;
      else if (s == "le") in.cc = Cond::LE;
      else if (s == "gt") in.cc = Cond::GT;
      else if (s == "ge") in.cc = Cond::GE;
      else if (s == "nta") in.pref = PrefKind::NTA;
      else if (s == "t0") in.pref = PrefKind::T0;
      else if (s == "t1") in.pref = PrefKind::T1;
      else if (s == "w") in.pref = PrefKind::W;
      else return failInst(lineNo, "unknown suffix '" + s + "'");
    }

    std::vector<std::string> operands;
    if (!rest.empty())
      for (const auto& piece : split(rest, ','))
        operands.emplace_back(trim(piece));

    const OpInfo& info = opInfo(in.op);
    size_t oi = 0;
    auto next = [&]() -> std::optional<std::string> {
      if (oi >= operands.size()) return std::nullopt;
      return operands[oi++];
    };
    auto takeReg = [&](Reg& out) -> bool {
      auto t = next();
      if (!t) return false;
      auto r = parseReg(*t);
      if (!r) return false;
      out = *r;
      return true;
    };

    if (info.hasDst && !takeReg(in.dst))
      return failInst(lineNo, "missing destination");
    for (int s = 0; s < info.numSrcs; ++s) {
      Reg* slot = s == 0 ? &in.src1 : s == 1 ? &in.src2 : &in.src3;
      if (!takeReg(*slot)) return failInst(lineNo, "missing source operand");
    }
    if (in.op == Op::Ret && oi < operands.size()) {
      if (!takeReg(in.src1)) return failInst(lineNo, "bad ret value");
    }
    if (touchesMem(in.op)) {
      auto t = next();
      if (!t) return failInst(lineNo, "missing memory operand");
      auto m = parseMem(*t, lineNo);
      if (!m) return std::nullopt;
      in.mem = *m;
    }
    if (info.hasImm) {
      auto t = next();
      if (!t) return failInst(lineNo, "missing immediate");
      if (!parseIntField(*t, &in.imm))
        return failInst(lineNo, "bad immediate '" + *t + "'");
    }
    if (info.hasFImm) {
      auto t = next();
      if (!t) return failInst(lineNo, "missing FP immediate");
      in.fimm = std::strtod(t->c_str(), nullptr);
    }
    if (info.isBranch) {
      auto t = next();
      if (!t || !startsWith(*t, "bb"))
        return failInst(lineNo, "missing branch target");
      int64_t label = 0;
      if (!parseIntField(std::string_view(*t).substr(2), &label) || label < 0)
        return failInst(lineNo, "bad branch target '" + *t + "'");
      in.label = static_cast<int32_t>(label);
    }
    if (oi != operands.size())
      return failInst(lineNo, "trailing operands in '" + std::string(line) + "'");
    return in;
  }

  std::vector<std::string> lines_;
  std::string* error_;
  Function fn_;
  int32_t max_int_ = 0;
  int32_t max_fp_ = 0;
};

}  // namespace

std::optional<Function> parse(std::string_view text, std::string* error) {
  return Parser(text, error).run();
}

}  // namespace ifko::ir
