// Convenience instruction builder appending to a basic block.
//
// Used by HIL lowering, by the fundamental transforms when they synthesize
// prologue/epilogue code, and by the hand-tuned ATLAS kernel variants (the
// stand-in for the paper's hand-written assembly kernels).
#pragma once

#include "ir/function.h"

namespace ifko::ir {

class Builder {
 public:
  Builder(Function& fn, int32_t blockId) : fn_(fn), block_id_(blockId) {}

  /// Redirect subsequent appends to another block.
  void setBlock(int32_t blockId) { block_id_ = blockId; }
  [[nodiscard]] int32_t blockId() const { return block_id_; }
  [[nodiscard]] Function& fn() { return fn_; }

  Inst& emit(Inst inst);

  // --- integer ---
  Reg imovi(int64_t imm);
  Reg imov(Reg src);
  Reg iadd(Reg a, Reg b);
  Reg isub(Reg a, Reg b);
  Reg imul(Reg a, Reg b);
  Reg iaddi(Reg a, int64_t imm);
  void icmp(Reg a, Reg b);
  void icmpi(Reg a, int64_t imm);

  // --- control ---
  void jmp(int32_t target);
  void jcc(Cond cc, int32_t target);
  void ret();
  void retVal(Reg value);

  // --- scalar FP ---
  Reg fldi(Scal t, double value);
  Reg fmov(Scal t, Reg src);
  Reg fld(Scal t, Mem m);
  void fst(Scal t, Mem m, Reg src);
  void fstnt(Scal t, Mem m, Reg src);
  Reg fadd(Scal t, Reg a, Reg b);
  Reg fsub(Scal t, Reg a, Reg b);
  Reg fmul(Scal t, Reg a, Reg b);
  Reg fdiv(Scal t, Reg a, Reg b);
  Reg fabs_(Scal t, Reg a);
  Reg fmax(Scal t, Reg a, Reg b);
  void fcmp(Scal t, Reg a, Reg b);

  // --- vector ---
  Reg vld(Scal t, Mem m);
  void vst(Scal t, Mem m, Reg src);
  void vstnt(Scal t, Mem m, Reg src);
  Reg vadd(Scal t, Reg a, Reg b);
  Reg vsub(Scal t, Reg a, Reg b);
  Reg vmul(Scal t, Reg a, Reg b);
  Reg vabs(Scal t, Reg a);
  Reg vmax(Scal t, Reg a, Reg b);
  Reg vbcast(Scal t, Reg scalar);
  Reg vzero(Scal t);
  Reg vhadd(Scal t, Reg a);
  Reg vhmax(Scal t, Reg a);
  Reg vcmpgt(Scal t, Reg a, Reg b);
  Reg vand(Scal t, Reg a, Reg b);
  Reg vandn(Scal t, Reg a, Reg b);
  Reg vor(Scal t, Reg a, Reg b);
  Reg vsel(Scal t, Reg mask, Reg a, Reg b);
  Reg vmovmsk(Scal t, Reg a);
  Reg viota(Scal t);

  // --- memory hints ---
  void pref(PrefKind kind, Mem m);

 private:
  Reg emitRR(Op op, Scal t, Reg a, Reg b);
  Reg emitR(Op op, Scal t, Reg a);

  Function& fn_;
  int32_t block_id_;
};

/// [base + disp]
[[nodiscard]] inline Mem mem(Reg base, int64_t disp = 0) {
  return Mem{.base = base, .index = Reg::none(), .scale = 1, .disp = disp};
}
/// [base + index*scale + disp]
[[nodiscard]] inline Mem memIdx(Reg base, Reg index, int32_t scale,
                                int64_t disp = 0) {
  return Mem{.base = base, .index = index, .scale = scale, .disp = disp};
}

}  // namespace ifko::ir
