#include "ir/printer.h"

#include <sstream>

namespace ifko::ir {

namespace {

std::string_view paramKindName(ParamKind k) {
  switch (k) {
    case ParamKind::PtrF32: return "f32*";
    case ParamKind::PtrF64: return "f64*";
    case ParamKind::ScalF32: return "f32";
    case ParamKind::ScalF64: return "f64";
    case ParamKind::Int: return "int";
  }
  return "?";
}

}  // namespace

std::string print(const Function& fn) {
  std::ostringstream os;
  os << "func " << fn.name << "(";
  for (size_t i = 0; i < fn.params.size(); ++i) {
    if (i) os << ", ";
    const Param& p = fn.params[i];
    os << paramKindName(p.kind) << " " << p.name;
    if (p.isPointer()) {
      os << "{" << (p.vecRead ? "r" : "") << (p.vecWritten ? "w" : "")
         << (p.noPrefetch ? "n" : "") << "}";
    }
    os << "=" << p.reg.str();
  }
  os << ")";
  switch (fn.retType) {
    case RetType::None: break;
    case RetType::Int: os << " -> int"; break;
    case RetType::F32: os << " -> f32"; break;
    case RetType::F64: os << " -> f64"; break;
  }
  if (fn.regAllocated) os << " [regalloc, spills=" << fn.numSpillSlots << "]";
  os << "\n";
  if (fn.loop.valid) {
    os << "  ; tuned loop: preheader=bb" << fn.loop.preheader
       << " header=bb" << fn.loop.header << " latch=bb"
       << fn.loop.latch << " exit=bb" << fn.loop.exit
       << " ivar=" << fn.loop.ivar.str() << " N=" << fn.loop.bound.str()
       << (fn.loop.dir == LoopDir::Up ? " up" : " down") << "\n";
  }
  for (const auto& bb : fn.blocks) {
    os << "bb" << bb.id << ":\n";
    for (const auto& inst : bb.insts) os << "  " << inst.str() << "\n";
  }
  return os.str();
}

}  // namespace ifko::ir
