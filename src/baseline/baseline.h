// Models of the paper's baseline compilers (Section 3.3).
//
// We obviously cannot ship icc 8.0 or 2005-era gcc; what the comparison
// needs is which transforms each compiler applies and with what *fixed*
// (non-empirical) heuristics.  Each baseline is therefore a fixed FKO
// parameterization:
//
//  * gcc+ref  — gcc 3.x -O3 -funroll-all-loops: no SIMD vectorization, a
//    fixed unroll of 4, no software prefetch, no non-temporal stores, the
//    simpler register allocator.
//  * icc+ref  — icc 8.0 -O3 -xP/-xW: vectorizes canonical ascending loops
//    (the paper had to rewrite ATLAS's `for(i=N;i;i--)` loops before icc
//    would vectorize anything), unrolls by 2, inserts prefetchnta at a
//    fixed 8-line distance for streaming loads.
//  * icc+prof — icc+ref plus profile feedback: with profile data showing a
//    long streaming loop, icc "blindly applies WNT" (the behaviour the
//    paper observed collapse on Opteron's swap/axpy).
//
// These are models, not the original binaries; DESIGN.md documents the
// substitution.
#pragma once

#include <string>

#include "arch/machine.h"
#include "fko/compiler.h"
#include "kernels/registry.h"

namespace ifko::baseline {

enum class Compiler { GccRef, IccRef, IccProf };

[[nodiscard]] std::string_view compilerName(Compiler c);

/// The fixed parameterization this baseline would choose for the kernel.
[[nodiscard]] fko::CompileOptions baselineOptions(
    Compiler c, const kernels::KernelSpec& spec,
    const arch::MachineConfig& machine);

/// Compiles the kernel the way this baseline would.
[[nodiscard]] fko::CompileResult compileBaseline(
    Compiler c, const kernels::KernelSpec& spec,
    const arch::MachineConfig& machine);

}  // namespace ifko::baseline
