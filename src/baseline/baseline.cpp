#include "baseline/baseline.h"

namespace ifko::baseline {

std::string_view compilerName(Compiler c) {
  switch (c) {
    case Compiler::GccRef: return "gcc+ref";
    case Compiler::IccRef: return "icc+ref";
    case Compiler::IccProf: return "icc+prof";
  }
  return "?";
}

fko::CompileOptions baselineOptions(Compiler c,
                                    const kernels::KernelSpec& spec,
                                    const arch::MachineConfig& machine) {
  fko::CompileOptions opts;
  auto report = fko::analyzeKernel(spec.hilSource(), machine);
  const int line = machine.lineBytes();

  switch (c) {
    case Compiler::GccRef:
      opts.tuning.simdVectorize = false;
      opts.tuning.unroll = 4;  // -funroll-all-loops
      opts.tuning.accumExpand = 1;
      opts.tuning.nonTemporalWrites = false;
      opts.regalloc = opt::RegAllocKind::Basic;
      break;

    case Compiler::IccRef:
    case Compiler::IccProf: {
      // icc vectorizes only canonical ascending loops; iamax's descending
      // loop (paper Fig. 6b) stays scalar regardless.
      opts.tuning.simdVectorize = spec.op != kernels::BlasOp::Iamax;
      opts.tuning.unroll = 2;
      opts.tuning.accumExpand = 1;
      // Fixed streaming-prefetch heuristic: prefetchnta, 8 lines ahead, for
      // every loaded stream.
      for (const auto& a : report.arrays) {
        if (!a.prefetchable || !a.loaded) continue;
        opts.tuning.prefetch[a.name] = {true, ir::PrefKind::NTA, 8 * line};
      }
      // Profile feedback: the loop is long and streaming, so apply
      // non-temporal writes unconditionally.
      opts.tuning.nonTemporalWrites = c == Compiler::IccProf;
      opts.regalloc = opt::RegAllocKind::LinearScan;
      break;
    }
  }
  return opts;
}

fko::CompileResult compileBaseline(Compiler c, const kernels::KernelSpec& spec,
                                   const arch::MachineConfig& machine) {
  return fko::compileKernel(spec.hilSource(), baselineOptions(c, spec, machine),
                            machine);
}

}  // namespace ifko::baseline
